//! Flexi-Runtime: per-node, per-step sampler selection (paper §4.1),
//! generalised over the pluggable [`SamplerRegistry`].
//!
//! The paper's first-order cost model compares the expected memory cost of
//! the two optimised kernels at the current node (Eqs. 9–11):
//!
//! ```text
//! Cost_RVS = EdgeCost_RVS · degree
//! Cost_RJS = EdgeCost_RJS · degree · max(w̃) / Σw̃
//! prefer RJS  ⇔  (EdgeCost_RJS / EdgeCost_RVS) · max(w̃) < Σw̃
//! ```
//!
//! Here the comparison runs over *every registered strategy*: each
//! [`Sampler`] prices one step through [`Sampler::step_cost`] (eRVS and
//! eRJS reproduce Eqs. 9 and 10 exactly) and the cheapest priceable
//! strategy wins, with registration order breaking ties. `max(w̃)` comes
//! from the compiler-generated bound estimator (also used as the eRJS
//! bound) and `Σw̃` from the sum estimator (Eq. 12); the edge cost ratio is
//! measured by the profiling kernels (§5.1, [`crate::profile`]).

use crate::preprocess::Aggregates;
use crate::workload::{DynamicWalk, WalkState};
use flexi_compiler::{AggKind, EstimatorEnv};
use flexi_graph::Csr;
use flexi_sampling::{ids, CostInputs, Sampler, SamplerId, SamplerRegistry};
use std::sync::Arc;

/// Sampler-selection strategies evaluated in Fig. 13.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// The paper's first-order cost model (Eq. 11), generalised to argmin
    /// over the registry.
    CostModel,
    /// Uniformly random choice among runnable strategies (Fig. 13
    /// baseline).
    Random,
    /// Degree threshold: reservoir-class below the threshold,
    /// rejection-class above (Fig. 13 baseline).
    DegreeThreshold(usize),
    /// Always the named strategy (Fig. 11 ablations; also the compiler
    /// fallback mode with [`ids::ERVS`]).
    Only(SamplerId),
}

impl SelectionStrategy {
    /// Always eRJS (Fig. 11 ablation).
    pub const RJS_ONLY: Self = Self::Only(ids::ERJS);
    /// Always eRVS (Fig. 11 ablation; the compiler-fallback mode).
    pub const RVS_ONLY: Self = Self::Only(ids::ERVS);

    /// The degree-based baseline with the paper's 1K threshold.
    pub fn paper_degree_baseline() -> Self {
        Self::DegreeThreshold(1000)
    }
}

/// The profiled cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// `EdgeCost_RJS / EdgeCost_RVS` — random-probe cost relative to
    /// sequential-scan cost per edge, measured at startup.
    pub edge_cost_ratio: f64,
}

impl CostModel {
    /// A reasonable default when profiling is skipped (random DRAM access
    /// is roughly this much more expensive than sequential on an A6000).
    pub fn default_ratio() -> Self {
        Self {
            edge_cost_ratio: 8.0,
        }
    }

    /// The cost inputs for one candidate step.
    pub fn inputs(&self, deg: f64, max_est: Option<f64>, sum_est: Option<f64>) -> CostInputs {
        CostInputs {
            deg,
            max_est,
            sum_est,
            edge_cost_ratio: self.edge_cost_ratio,
        }
    }

    /// Generalised Eq. 11: the cheapest priceable strategy in `registry`
    /// for a node with the given degree and estimates. Ties keep the
    /// earlier registration, so the built-in `[eRVS, eRJS]` registry
    /// reproduces the paper's strict `ratio · max < sum` comparison
    /// exactly. Returns the registry position alongside the strategy;
    /// `None` only for an empty (or wholly unpriceable) registry.
    pub fn select<'r>(
        &self,
        registry: &'r SamplerRegistry,
        deg: f64,
        max_est: Option<f64>,
        sum_est: Option<f64>,
    ) -> Option<(usize, &'r Arc<dyn Sampler>)> {
        let all: Vec<usize> = (0..registry.len()).collect();
        self.select_among(registry, &all, deg, max_est, sum_est)
    }

    /// [`CostModel::select`] restricted to the given registry positions —
    /// the single argmin implementation the engine's per-step selection
    /// also uses (candidates exclude bound-needing strategies when no
    /// estimator exists).
    pub fn select_among<'r>(
        &self,
        registry: &'r SamplerRegistry,
        candidates: &[usize],
        deg: f64,
        max_est: Option<f64>,
        sum_est: Option<f64>,
    ) -> Option<(usize, &'r Arc<dyn Sampler>)> {
        let inp = self.inputs(deg, max_est, sum_est);
        let mut best: Option<(usize, &'r Arc<dyn Sampler>, f64)> = None;
        for &i in candidates {
            let Some(s) = registry.at(i) else {
                continue;
            };
            let Some(cost) = s.step_cost(&inp) else {
                continue;
            };
            if !cost.is_finite() {
                continue;
            }
            if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
                best = Some((i, s, cost));
            }
        }
        best.map(|(i, s, _)| (i, s))
    }
}

/// Estimator environment bridging graph, aggregates, workload and walker
/// state — the values `get_weight_max()/_sum()` read at runtime.
pub struct RuntimeEnv<'a> {
    /// Graph being walked.
    pub graph: &'a Csr,
    /// Preprocessed `_MAX` / `_SUM` aggregates.
    pub aggregates: &'a Aggregates,
    /// The workload (hyperparameters, schema lookups).
    pub workload: &'a dyn DynamicWalk,
    /// Current walker state.
    pub state: WalkState,
}

impl EstimatorEnv for RuntimeEnv<'_> {
    fn edge_aggregate(&self, array: &str, kind: AggKind) -> Option<f64> {
        self.aggregates.get(array, kind, self.state.cur)
    }

    fn node_scalar(&self, array: &str, index: &str) -> Option<f64> {
        self.workload
            .env_scalar(self.graph, &self.state, array, index)
    }

    fn var(&self, name: &str) -> Option<f64> {
        match name {
            "deg" => Some(self.graph.degree(self.state.cur) as f64),
            "step" | "iter" => Some(self.state.step as f64),
            other => self.workload.hyperparam(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Node2Vec;
    use flexi_compiler::PreprocessRequest;
    use flexi_gpu_sim::DeviceSpec;
    use flexi_graph::CsrBuilder;
    use flexi_sampling::Granularity;

    fn selected(m: &CostModel, max_est: Option<f64>, sum_est: Option<f64>) -> &'static str {
        let reg = SamplerRegistry::builtin();
        m.select(&reg, 100.0, max_est, sum_est)
            .expect("builtin registry always selects")
            .1
            .id()
    }

    #[test]
    fn cost_model_prefers_rjs_for_flat_weights() {
        // 100 neighbors of weight ~1: max = 1, sum = 100, ratio 8 → RJS.
        let m = CostModel {
            edge_cost_ratio: 8.0,
        };
        assert_eq!(selected(&m, Some(1.0), Some(100.0)), ids::ERJS);
    }

    #[test]
    fn cost_model_prefers_rvs_for_skewed_weights() {
        // One huge outlier: max = 90, sum = 100 → 8·90 > 100 → RVS.
        let m = CostModel {
            edge_cost_ratio: 8.0,
        };
        assert_eq!(selected(&m, Some(90.0), Some(100.0)), ids::ERVS);
    }

    #[test]
    fn cost_model_threshold_is_eq11() {
        let m = CostModel {
            edge_cost_ratio: 2.0,
        };
        // 2 * 10 = 20: strictly-less comparison → RVS at equality.
        assert_eq!(selected(&m, Some(10.0), Some(20.0)), ids::ERVS);
        assert_eq!(selected(&m, Some(10.0), Some(20.1)), ids::ERJS);
    }

    #[test]
    fn missing_estimates_fall_back_to_rvs() {
        let m = CostModel::default_ratio();
        assert_eq!(selected(&m, None, Some(5.0)), ids::ERVS);
        assert_eq!(selected(&m, Some(5.0), None), ids::ERVS);
        assert_eq!(selected(&m, Some(f64::NAN), Some(5.0)), ids::ERVS);
        assert_eq!(selected(&m, Some(0.0), Some(5.0)), ids::ERVS);
    }

    #[test]
    fn empty_registry_selects_nothing() {
        let m = CostModel::default_ratio();
        let reg = SamplerRegistry::empty();
        assert!(m.select(&reg, 10.0, Some(1.0), Some(10.0)).is_none());
    }

    #[test]
    fn third_party_sampler_wins_when_cheaper() {
        // A custom strategy undercutting both built-ins must be selected —
        // the registry seam the engine's extensibility rests on.
        struct Cheap;
        impl Sampler for Cheap {
            fn id(&self) -> SamplerId {
                "cheap"
            }
            fn granularity(&self) -> Granularity {
                Granularity::Warp
            }
            fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
                Some(inp.deg * 0.01)
            }
            fn sample_scalar(
                &self,
                _w: &[f32],
                _b: Option<f32>,
                _r: &mut dyn flexi_rng::RandomSource,
            ) -> (Option<usize>, flexi_sampling::ScalarCost) {
                (None, flexi_sampling::ScalarCost::default())
            }
        }
        let mut reg = SamplerRegistry::builtin();
        reg.register(Arc::new(Cheap));
        let m = CostModel::default_ratio();
        let (pos, s) = m.select(&reg, 100.0, Some(1.0), Some(100.0)).unwrap();
        assert_eq!(s.id(), "cheap");
        assert_eq!(pos, 2, "registered after the builtin pair");
    }

    #[test]
    fn runtime_env_resolves_all_value_classes() {
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 1, 3.0)
            .weighted_edge(0, 0, 5.0)
            .weighted_edge(1, 0, 1.0)
            .build()
            .unwrap();
        let req = vec![PreprocessRequest {
            array: "h".into(),
            kind: AggKind::Max,
        }];
        let agg = Aggregates::compute(&g, &req, &DeviceSpec::tiny());
        let w = Node2Vec::paper(true);
        let env = RuntimeEnv {
            graph: &g,
            aggregates: &agg,
            workload: &w,
            state: WalkState::start(0),
        };
        assert_eq!(env.edge_aggregate("h", AggKind::Max), Some(5.0));
        assert_eq!(env.edge_aggregate("h", AggKind::Sum), Some(8.0));
        assert_eq!(env.node_scalar("deg", "cur"), Some(2.0));
        assert_eq!(env.var("deg"), Some(2.0));
        assert_eq!(env.var("step"), Some(0.0));
        assert_eq!(env.var("a"), Some(2.0));
        assert_eq!(env.var("nonsense"), None);
    }

    #[test]
    fn compiled_estimator_plus_env_produces_sound_bound() {
        // End-to-end: compile weighted Node2Vec, evaluate its max estimator
        // through RuntimeEnv, and verify it dominates every actual weight.
        use crate::workload::DynamicWalk;
        use flexi_compiler::{compile, CompileOutcome};
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 3.0)
            .weighted_edge(0, 2, 4.5)
            .weighted_edge(1, 0, 2.0)
            .weighted_edge(2, 0, 1.0)
            .build()
            .unwrap();
        let w = Node2Vec::paper(true);
        let compiled = match compile(&w.spec()).unwrap() {
            CompileOutcome::Supported(c) => c,
            _ => panic!("node2vec must compile"),
        };
        let agg = Aggregates::compute(&g, &compiled.preprocess, &DeviceSpec::tiny());
        for prev in [None, Some(1u32), Some(2u32)] {
            let state = WalkState {
                cur: 0,
                prev,
                step: 1,
                time: 0,
            };
            let env = RuntimeEnv {
                graph: &g,
                aggregates: &agg,
                workload: &w,
                state,
            };
            let bound = compiled.max_estimator.eval(&env).unwrap();
            for e in g.edge_range(0) {
                let actual = f64::from(w.weight(&g, &state, e));
                assert!(
                    bound >= actual - 1e-9,
                    "bound {bound} < actual {actual} (prev {prev:?})"
                );
            }
        }
    }
}
