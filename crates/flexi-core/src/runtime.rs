//! Flexi-Runtime: per-node, per-step sampler selection (paper §4.1),
//! generalised over the pluggable [`SamplerRegistry`].
//!
//! The paper's first-order cost model compares the expected memory cost of
//! the two optimised kernels at the current node (Eqs. 9–11):
//!
//! ```text
//! Cost_RVS = EdgeCost_RVS · degree
//! Cost_RJS = EdgeCost_RJS · degree · max(w̃) / Σw̃
//! prefer RJS  ⇔  (EdgeCost_RJS / EdgeCost_RVS) · max(w̃) < Σw̃
//! ```
//!
//! Here the comparison runs over *every registered strategy*: each
//! [`Sampler`] prices one step through [`Sampler::step_cost`] (eRVS and
//! eRJS reproduce Eqs. 9 and 10 exactly) and the cheapest priceable
//! strategy wins, with registration order breaking ties. `max(w̃)` comes
//! from the compiler-generated bound estimator (also used as the eRJS
//! bound) and `Σw̃` from the sum estimator (Eq. 12); the edge cost ratio is
//! measured by the profiling kernels (§5.1, [`crate::profile`]).

use crate::preprocess::Aggregates;
use crate::workload::{DynamicWalk, WalkState};
use flexi_compiler::{AggKind, EstimatorEnv};
use flexi_graph::Csr;
use flexi_sampling::{ids, CostInputs, Sampler, SamplerId, SamplerRegistry};
use std::sync::Arc;

/// Sampler-selection strategies evaluated in Fig. 13.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// The paper's first-order cost model (Eq. 11), generalised to argmin
    /// over the registry.
    CostModel,
    /// Uniformly random choice among runnable strategies (Fig. 13
    /// baseline).
    Random,
    /// Degree threshold: reservoir-class below the threshold,
    /// rejection-class above (Fig. 13 baseline).
    DegreeThreshold(usize),
    /// Always the named strategy (Fig. 11 ablations; also the compiler
    /// fallback mode with [`ids::ERVS`]).
    Only(SamplerId),
}

impl SelectionStrategy {
    /// Always eRJS (Fig. 11 ablation).
    pub const RJS_ONLY: Self = Self::Only(ids::ERJS);
    /// Always eRVS (Fig. 11 ablation; the compiler-fallback mode).
    pub const RVS_ONLY: Self = Self::Only(ids::ERVS);

    /// The degree-based baseline with the paper's 1K threshold.
    pub fn paper_degree_baseline() -> Self {
        Self::DegreeThreshold(1000)
    }
}

/// Expected update churn the cost model amortises against when pricing
/// stateful strategies — the "update cost" axis of the argmin.
///
/// A strategy served from a prebuilt per-node artifact samples cheaply
/// but pays to keep the artifact current across graph epochs. The churn
/// profile expresses that maintenance pressure as *expected per-node
/// state refreshes per sampling step served*: `0.0` (the default) is a
/// read-only graph where resident state is free to keep, large values
/// describe write-heavy serving where a fast-sampling/slow-rebuilding
/// strategy should lose the argmin.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChurnProfile {
    /// Expected dirty-node artifact refreshes per sampling step served
    /// (refresh rate ÷ sampling rate over the serving horizon).
    pub refreshes_per_step: f64,
}

impl ChurnProfile {
    /// A churn profile from observed counters: `refreshes` dirty-node
    /// patches amortised over `steps` sampling steps.
    pub fn observed(refreshes: u64, steps: u64) -> Self {
        Self {
            refreshes_per_step: if steps == 0 {
                0.0
            } else {
                refreshes as f64 / steps as f64
            },
        }
    }
}

/// One candidate strategy's pricing inside a [`SamplerSelection`] — the
/// *why* behind an argmin outcome, replacing the bare registry index the
/// positional API used to return.
#[derive(Clone)]
pub struct PricedCandidate {
    /// The candidate strategy.
    pub sampler: Arc<dyn Sampler>,
    /// Expected cost of sampling one step (`None`: unpriceable at this
    /// node, e.g. a rejection strategy without a usable bound estimate).
    pub sample_cost: Option<f64>,
    /// Amortised per-step charge for keeping the strategy's state
    /// artifact current under the configured [`ChurnProfile`] (`0.0` for
    /// stateless pricing or a churn-free profile).
    pub update_cost: f64,
    /// Whether the pricing assumed a resident per-node state artifact.
    pub stateful: bool,
}

impl PricedCandidate {
    /// The argmin objective: sample cost plus amortised update cost.
    pub fn total(&self) -> Option<f64> {
        self.sample_cost.map(|c| c + self.update_cost)
    }
}

impl std::fmt::Debug for PricedCandidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PricedCandidate")
            .field("sampler", &self.sampler.id())
            .field("sample_cost", &self.sample_cost)
            .field("update_cost", &self.update_cost)
            .field("stateful", &self.stateful)
            .finish()
    }
}

/// The typed result of one cost-model argmin: the winning strategy plus
/// the full pricing table it won against.
#[derive(Clone)]
pub struct SamplerSelection {
    /// The selected (cheapest priceable) strategy.
    pub sampler: Arc<dyn Sampler>,
    /// Every candidate's pricing, in priority order — callers can see
    /// whether a strategy won on sample cost, lost on update cost, or was
    /// unpriceable.
    pub priced: Vec<PricedCandidate>,
}

impl SamplerSelection {
    /// The winning candidate's pricing row.
    pub fn winner(&self) -> &PricedCandidate {
        self.priced
            .iter()
            .find(|p| p.sampler.id() == self.sampler.id())
            .expect("selection winner is always priced")
    }
}

impl std::fmt::Debug for SamplerSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplerSelection")
            .field("sampler", &self.sampler.id())
            .field("priced", &self.priced)
            .finish()
    }
}

/// The profiled cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// `EdgeCost_RJS / EdgeCost_RVS` — random-probe cost relative to
    /// sequential-scan cost per edge, measured at startup.
    pub edge_cost_ratio: f64,
    /// Expected update churn amortised into stateful pricing (zero by
    /// default, which reproduces the read-only argmin exactly).
    pub churn: ChurnProfile,
}

impl CostModel {
    /// A reasonable default when profiling is skipped (random DRAM access
    /// is roughly this much more expensive than sequential on an A6000).
    pub fn default_ratio() -> Self {
        Self {
            edge_cost_ratio: 8.0,
            churn: ChurnProfile::default(),
        }
    }

    /// A cost model with the given measured/pinned ratio and no churn.
    pub fn with_ratio(edge_cost_ratio: f64) -> Self {
        Self {
            edge_cost_ratio,
            churn: ChurnProfile::default(),
        }
    }

    /// The cost inputs for one candidate step.
    pub fn inputs(&self, deg: f64, max_est: Option<f64>, sum_est: Option<f64>) -> CostInputs {
        CostInputs {
            deg,
            max_est,
            sum_est,
            edge_cost_ratio: self.edge_cost_ratio,
        }
    }

    /// Prices one candidate: stateless strategies through
    /// [`Sampler::step_cost`]; stateful ones (when `stateful`, i.e. a
    /// resident artifact serves this node) through
    /// [`Sampler::state_step_cost`] plus the churn-amortised
    /// [`Sampler::state_update_cost`].
    ///
    /// Returns `(sample_cost, update_cost)`; a `None` sample cost means
    /// the strategy cannot be priced at this node.
    pub fn price(
        &self,
        sampler: &dyn Sampler,
        stateful: bool,
        inp: &CostInputs,
    ) -> (Option<f64>, f64) {
        if stateful {
            if let Some(sample) = sampler.state_step_cost(inp) {
                let update =
                    self.churn.refreshes_per_step * sampler.state_update_cost(inp).unwrap_or(0.0);
                return (Some(sample).filter(|c| c.is_finite()), update);
            }
        }
        (sampler.step_cost(inp).filter(|c| c.is_finite()), 0.0)
    }

    /// Generalised Eq. 11 over explicit candidates: the cheapest priceable
    /// strategy wins on `sample_cost + update_cost`, ties keeping the
    /// earlier candidate — so the built-in `[eRVS, eRJS]` pair reproduces
    /// the paper's strict `ratio · max < sum` comparison exactly. Each
    /// candidate carries whether a resident state artifact serves it at
    /// this node. Returns the full pricing table; `None` only when no
    /// candidate is priceable.
    pub fn selection<'a>(
        &self,
        candidates: impl IntoIterator<Item = (&'a Arc<dyn Sampler>, bool)>,
        deg: f64,
        max_est: Option<f64>,
        sum_est: Option<f64>,
    ) -> Option<SamplerSelection> {
        let inp = self.inputs(deg, max_est, sum_est);
        let mut priced = Vec::new();
        let mut best: Option<(usize, f64)> = None;
        for (s, stateful) in candidates {
            let (sample_cost, update_cost) = self.price(s.as_ref(), stateful, &inp);
            let row = PricedCandidate {
                sampler: Arc::clone(s),
                sample_cost,
                update_cost,
                stateful,
            };
            if let Some(total) = row.total() {
                if best.is_none_or(|(_, c)| total < c) {
                    best = Some((priced.len(), total));
                }
            }
            priced.push(row);
        }
        best.map(|(i, _)| SamplerSelection {
            sampler: Arc::clone(&priced[i].sampler),
            priced,
        })
    }

    /// [`CostModel::selection`] over a whole registry, priced statelessly —
    /// the drop-in replacement for the old positional `select`.
    pub fn select_registry(
        &self,
        registry: &SamplerRegistry,
        deg: f64,
        max_est: Option<f64>,
        sum_est: Option<f64>,
    ) -> Option<SamplerSelection> {
        self.selection(registry.iter().map(|s| (s, false)), deg, max_est, sum_est)
    }
}

/// Estimator environment bridging graph, aggregates, workload and walker
/// state — the values `get_weight_max()/_sum()` read at runtime.
pub struct RuntimeEnv<'a> {
    /// Graph being walked.
    pub graph: &'a Csr,
    /// Preprocessed `_MAX` / `_SUM` aggregates.
    pub aggregates: &'a Aggregates,
    /// The workload (hyperparameters, schema lookups).
    pub workload: &'a dyn DynamicWalk,
    /// Current walker state.
    pub state: WalkState,
}

impl EstimatorEnv for RuntimeEnv<'_> {
    fn edge_aggregate(&self, array: &str, kind: AggKind) -> Option<f64> {
        self.aggregates.get(array, kind, self.state.cur)
    }

    fn node_scalar(&self, array: &str, index: &str) -> Option<f64> {
        self.workload
            .env_scalar(self.graph, &self.state, array, index)
    }

    fn var(&self, name: &str) -> Option<f64> {
        match name {
            "deg" => Some(self.graph.degree(self.state.cur) as f64),
            "step" | "iter" => Some(self.state.step as f64),
            other => self.workload.hyperparam(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Node2Vec;
    use flexi_compiler::PreprocessRequest;
    use flexi_gpu_sim::DeviceSpec;
    use flexi_graph::CsrBuilder;
    use flexi_sampling::Granularity;

    fn selected(m: &CostModel, max_est: Option<f64>, sum_est: Option<f64>) -> &'static str {
        let reg = SamplerRegistry::builtin();
        m.select_registry(&reg, 100.0, max_est, sum_est)
            .expect("builtin registry always selects")
            .sampler
            .id()
    }

    #[test]
    fn cost_model_prefers_rjs_for_flat_weights() {
        // 100 neighbors of weight ~1: max = 1, sum = 100, ratio 8 → RJS.
        let m = CostModel::with_ratio(8.0);
        assert_eq!(selected(&m, Some(1.0), Some(100.0)), ids::ERJS);
    }

    #[test]
    fn cost_model_prefers_rvs_for_skewed_weights() {
        // One huge outlier: max = 90, sum = 100 → 8·90 > 100 → RVS.
        let m = CostModel::with_ratio(8.0);
        assert_eq!(selected(&m, Some(90.0), Some(100.0)), ids::ERVS);
    }

    #[test]
    fn cost_model_threshold_is_eq11() {
        let m = CostModel::with_ratio(2.0);
        // 2 * 10 = 20: strictly-less comparison → RVS at equality.
        assert_eq!(selected(&m, Some(10.0), Some(20.0)), ids::ERVS);
        assert_eq!(selected(&m, Some(10.0), Some(20.1)), ids::ERJS);
    }

    #[test]
    fn missing_estimates_fall_back_to_rvs() {
        let m = CostModel::default_ratio();
        assert_eq!(selected(&m, None, Some(5.0)), ids::ERVS);
        assert_eq!(selected(&m, Some(5.0), None), ids::ERVS);
        assert_eq!(selected(&m, Some(f64::NAN), Some(5.0)), ids::ERVS);
        assert_eq!(selected(&m, Some(0.0), Some(5.0)), ids::ERVS);
    }

    #[test]
    fn empty_registry_selects_nothing() {
        let m = CostModel::default_ratio();
        let reg = SamplerRegistry::empty();
        assert!(m
            .select_registry(&reg, 10.0, Some(1.0), Some(10.0))
            .is_none());
    }

    #[test]
    fn selection_exposes_per_candidate_pricing() {
        let m = CostModel::with_ratio(8.0);
        let reg = SamplerRegistry::builtin();
        let sel = m
            .select_registry(&reg, 100.0, Some(1.0), Some(100.0))
            .unwrap();
        assert_eq!(sel.sampler.id(), ids::ERJS);
        assert_eq!(sel.priced.len(), 2, "every candidate is priced");
        let ervs = &sel.priced[0];
        let erjs = &sel.priced[1];
        assert_eq!(ervs.sampler.id(), ids::ERVS);
        assert_eq!(ervs.sample_cost, Some(100.0), "Eq. 9");
        assert_eq!(erjs.sample_cost, Some(8.0), "Eq. 10");
        assert_eq!(erjs.update_cost, 0.0, "stateless pricing has no churn");
        assert_eq!(sel.winner().sampler.id(), ids::ERJS);
        assert!(sel.winner().total() < ervs.total());
    }

    #[test]
    fn resident_state_flips_the_argmin_toward_heavyweight_strategies() {
        use flexi_sampling::AliasSampler;
        let m = CostModel::with_ratio(8.0);
        let reg = SamplerRegistry::with_baselines();
        let deg = 1000.0;
        // Statelessly, ALS pays its per-step table build and loses.
        let cold = m
            .select_registry(&reg, deg, Some(90.0), Some(100.0))
            .unwrap();
        assert_ne!(cold.sampler.id(), ids::ALS);
        // With a resident artifact the table build is amortised away: the
        // O(1) stateful sample (2·ratio = 16) beats every scan strategy.
        let warm = m
            .selection(
                reg.iter().map(|s| (s, s.id() == ids::ALS)),
                deg,
                Some(90.0),
                Some(100.0),
            )
            .unwrap();
        assert_eq!(warm.sampler.id(), ids::ALS);
        let row = warm.winner();
        assert!(row.stateful);
        assert_eq!(row.sample_cost, Some(16.0));
        // Sanity: the stateful coefficients came from the trait hooks.
        let inp = m.inputs(deg, None, None);
        assert_eq!(AliasSampler.state_step_cost(&inp), Some(16.0));
        assert_eq!(AliasSampler.state_update_cost(&inp), Some(7.0 * deg));
    }

    #[test]
    fn churn_charge_prices_update_cost_into_the_argmin() {
        // Under heavy churn the amortised per-step update charge must make
        // a fast-sampling/slow-rebuilding stateful strategy lose to the
        // plain scan — the "samples fast but rebuilds slow" clause.
        let reg = SamplerRegistry::with_baselines();
        let deg = 100.0;
        let pick = |refreshes_per_step: f64| {
            let m = CostModel {
                edge_cost_ratio: 8.0,
                churn: ChurnProfile { refreshes_per_step },
            };
            m.selection(
                reg.iter().map(|s| (s, s.supports_state())),
                deg,
                Some(90.0),
                Some(100.0),
            )
            .unwrap()
        };
        let idle = pick(0.0);
        assert_eq!(idle.sampler.id(), ids::ALS, "free to keep when read-only");
        assert_eq!(idle.winner().update_cost, 0.0);
        // One full dirty-node refresh per step: ALS pays 16 + 700, ITS
        // pays ~53 + 200 — both now lose to eRVS's plain deg scan.
        let churning = pick(1.0);
        assert_eq!(churning.sampler.id(), ids::ERVS);
        let als = churning
            .priced
            .iter()
            .find(|p| p.sampler.id() == ids::ALS)
            .unwrap();
        assert_eq!(als.update_cost, 700.0, "7·deg per refresh, 1 per step");
        assert_eq!(
            ChurnProfile::observed(50, 100).refreshes_per_step,
            0.5,
            "observed counters amortise refreshes over steps"
        );
        assert_eq!(ChurnProfile::observed(5, 0).refreshes_per_step, 0.0);
    }

    #[test]
    fn third_party_sampler_wins_when_cheaper() {
        // A custom strategy undercutting both built-ins must be selected —
        // the registry seam the engine's extensibility rests on.
        struct Cheap;
        impl Sampler for Cheap {
            fn id(&self) -> SamplerId {
                "cheap"
            }
            fn granularity(&self) -> Granularity {
                Granularity::Warp
            }
            fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
                Some(inp.deg * 0.01)
            }
            fn sample_scalar(
                &self,
                _w: &[f32],
                _b: Option<f32>,
                _r: &mut dyn flexi_rng::RandomSource,
            ) -> (Option<usize>, flexi_sampling::ScalarCost) {
                (None, flexi_sampling::ScalarCost::default())
            }
        }
        let mut reg = SamplerRegistry::builtin();
        reg.register(Arc::new(Cheap));
        let m = CostModel::default_ratio();
        let sel = m
            .select_registry(&reg, 100.0, Some(1.0), Some(100.0))
            .unwrap();
        assert_eq!(sel.sampler.id(), "cheap");
        assert_eq!(sel.priced.len(), 3, "all three candidates priced");
    }

    #[test]
    fn runtime_env_resolves_all_value_classes() {
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 1, 3.0)
            .weighted_edge(0, 0, 5.0)
            .weighted_edge(1, 0, 1.0)
            .build()
            .unwrap();
        let req = vec![PreprocessRequest {
            array: "h".into(),
            kind: AggKind::Max,
        }];
        let agg = Aggregates::compute(&g, &req, &DeviceSpec::tiny());
        let w = Node2Vec::paper(true);
        let env = RuntimeEnv {
            graph: &g,
            aggregates: &agg,
            workload: &w,
            state: WalkState::start(0),
        };
        assert_eq!(env.edge_aggregate("h", AggKind::Max), Some(5.0));
        assert_eq!(env.edge_aggregate("h", AggKind::Sum), Some(8.0));
        assert_eq!(env.node_scalar("deg", "cur"), Some(2.0));
        assert_eq!(env.var("deg"), Some(2.0));
        assert_eq!(env.var("step"), Some(0.0));
        assert_eq!(env.var("a"), Some(2.0));
        assert_eq!(env.var("nonsense"), None);
    }

    #[test]
    fn compiled_estimator_plus_env_produces_sound_bound() {
        // End-to-end: compile weighted Node2Vec, evaluate its max estimator
        // through RuntimeEnv, and verify it dominates every actual weight.
        use crate::workload::DynamicWalk;
        use flexi_compiler::{compile, CompileOutcome};
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 3.0)
            .weighted_edge(0, 2, 4.5)
            .weighted_edge(1, 0, 2.0)
            .weighted_edge(2, 0, 1.0)
            .build()
            .unwrap();
        let w = Node2Vec::paper(true);
        let compiled = match compile(&w.spec()).unwrap() {
            CompileOutcome::Supported(c) => c,
            _ => panic!("node2vec must compile"),
        };
        let agg = Aggregates::compute(&g, &compiled.preprocess, &DeviceSpec::tiny());
        for prev in [None, Some(1u32), Some(2u32)] {
            let state = WalkState {
                cur: 0,
                prev,
                step: 1,
                time: 0,
            };
            let env = RuntimeEnv {
                graph: &g,
                aggregates: &agg,
                workload: &w,
                state,
            };
            let bound = compiled.max_estimator.eval(&env).unwrap();
            for e in g.edge_range(0) {
                let actual = f64::from(w.weight(&g, &state, e));
                assert!(
                    bound >= actual - 1e-9,
                    "bound {bound} < actual {actual} (prev {prev:?})"
                );
            }
        }
    }
}
