//! Flexi-Runtime: per-node, per-step sampler selection (paper §4.1).
//!
//! The first-order cost model compares the expected memory cost of the two
//! optimised kernels at the current node (Eqs. 9–11):
//!
//! ```text
//! Cost_RVS = EdgeCost_RVS · degree
//! Cost_RJS = EdgeCost_RJS · degree · max(w̃) / Σw̃
//! prefer RJS  ⇔  (EdgeCost_RJS / EdgeCost_RVS) · max(w̃) < Σw̃
//! ```
//!
//! `max(w̃)` comes from the compiler-generated bound estimator (also used
//! as the eRJS bound) and `Σw̃` from the sum estimator (Eq. 12); the edge
//! cost ratio is measured by the profiling kernels (§5.1, [`crate::profile`]).

use crate::preprocess::Aggregates;
use crate::workload::{DynamicWalk, WalkState};
use flexi_compiler::{AggKind, EstimatorEnv};
use flexi_graph::Csr;

/// Which optimised kernel to run for one sampling step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerChoice {
    /// eRJS: thread-granular rejection with estimated bound.
    Rjs,
    /// eRVS: warp-granular reservoir with exponential keys + jump.
    Rvs,
}

/// Sampler-selection strategies evaluated in Fig. 13.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// The paper's first-order cost model (Eq. 11).
    CostModel,
    /// Uniformly random choice (Fig. 13 baseline).
    Random,
    /// Degree threshold: RVS below `1K` neighbors, RJS above (Fig. 13
    /// baseline).
    DegreeThreshold(usize),
    /// Always eRJS (Fig. 11 ablation).
    RjsOnly,
    /// Always eRVS (Fig. 11 ablation; also the compiler fallback mode).
    RvsOnly,
}

impl SelectionStrategy {
    /// The degree-based baseline with the paper's 1K threshold.
    pub fn paper_degree_baseline() -> Self {
        Self::DegreeThreshold(1000)
    }
}

/// The profiled cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// `EdgeCost_RJS / EdgeCost_RVS` — random-probe cost relative to
    /// sequential-scan cost per edge, measured at startup.
    pub edge_cost_ratio: f64,
}

impl CostModel {
    /// A reasonable default when profiling is skipped (random DRAM access
    /// is roughly this much more expensive than sequential on an A6000).
    pub fn default_ratio() -> Self {
        Self {
            edge_cost_ratio: 8.0,
        }
    }

    /// Eq. 11: prefer eRJS iff `ratio · max(w̃) < Σw̃`.
    ///
    /// `None` estimates (estimator fallback) select eRVS for soundness.
    pub fn choose(&self, max_est: Option<f64>, sum_est: Option<f64>) -> SamplerChoice {
        match (max_est, sum_est) {
            (Some(mx), Some(sm)) if mx.is_finite() && sm.is_finite() && mx > 0.0 => {
                if self.edge_cost_ratio * mx < sm {
                    SamplerChoice::Rjs
                } else {
                    SamplerChoice::Rvs
                }
            }
            _ => SamplerChoice::Rvs,
        }
    }
}

/// Estimator environment bridging graph, aggregates, workload and walker
/// state — the values `get_weight_max()/_sum()` read at runtime.
pub struct RuntimeEnv<'a> {
    /// Graph being walked.
    pub graph: &'a Csr,
    /// Preprocessed `_MAX` / `_SUM` aggregates.
    pub aggregates: &'a Aggregates,
    /// The workload (hyperparameters, schema lookups).
    pub workload: &'a dyn DynamicWalk,
    /// Current walker state.
    pub state: WalkState,
}

impl EstimatorEnv for RuntimeEnv<'_> {
    fn edge_aggregate(&self, array: &str, kind: AggKind) -> Option<f64> {
        self.aggregates.get(array, kind, self.state.cur)
    }

    fn node_scalar(&self, array: &str, index: &str) -> Option<f64> {
        self.workload
            .env_scalar(self.graph, &self.state, array, index)
    }

    fn var(&self, name: &str) -> Option<f64> {
        match name {
            "deg" => Some(self.graph.degree(self.state.cur) as f64),
            "step" | "iter" => Some(self.state.step as f64),
            other => self.workload.hyperparam(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Node2Vec;
    use flexi_compiler::PreprocessRequest;
    use flexi_gpu_sim::DeviceSpec;
    use flexi_graph::CsrBuilder;

    #[test]
    fn cost_model_prefers_rjs_for_flat_weights() {
        // 100 neighbors of weight ~1: max = 1, sum = 100, ratio 8 → RJS.
        let m = CostModel { edge_cost_ratio: 8.0 };
        assert_eq!(m.choose(Some(1.0), Some(100.0)), SamplerChoice::Rjs);
    }

    #[test]
    fn cost_model_prefers_rvs_for_skewed_weights() {
        // One huge outlier: max = 90, sum = 100 → 8·90 > 100 → RVS.
        let m = CostModel { edge_cost_ratio: 8.0 };
        assert_eq!(m.choose(Some(90.0), Some(100.0)), SamplerChoice::Rvs);
    }

    #[test]
    fn cost_model_threshold_is_eq11() {
        let m = CostModel { edge_cost_ratio: 2.0 };
        // 2 * 10 = 20: strictly-less comparison → RVS at equality.
        assert_eq!(m.choose(Some(10.0), Some(20.0)), SamplerChoice::Rvs);
        assert_eq!(m.choose(Some(10.0), Some(20.1)), SamplerChoice::Rjs);
    }

    #[test]
    fn missing_estimates_fall_back_to_rvs() {
        let m = CostModel::default_ratio();
        assert_eq!(m.choose(None, Some(5.0)), SamplerChoice::Rvs);
        assert_eq!(m.choose(Some(5.0), None), SamplerChoice::Rvs);
        assert_eq!(m.choose(Some(f64::NAN), Some(5.0)), SamplerChoice::Rvs);
        assert_eq!(m.choose(Some(0.0), Some(5.0)), SamplerChoice::Rvs);
    }

    #[test]
    fn runtime_env_resolves_all_value_classes() {
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 1, 3.0)
            .weighted_edge(0, 0, 5.0)
            .weighted_edge(1, 0, 1.0)
            .build()
            .unwrap();
        let req = vec![PreprocessRequest {
            array: "h".into(),
            kind: AggKind::Max,
        }];
        let agg = Aggregates::compute(&g, &req, &DeviceSpec::tiny());
        let w = Node2Vec::paper(true);
        let env = RuntimeEnv {
            graph: &g,
            aggregates: &agg,
            workload: &w,
            state: WalkState::start(0),
        };
        assert_eq!(env.edge_aggregate("h", AggKind::Max), Some(5.0));
        assert_eq!(env.edge_aggregate("h", AggKind::Sum), Some(8.0));
        assert_eq!(env.node_scalar("deg", "cur"), Some(2.0));
        assert_eq!(env.var("deg"), Some(2.0));
        assert_eq!(env.var("step"), Some(0.0));
        assert_eq!(env.var("a"), Some(2.0));
        assert_eq!(env.var("nonsense"), None);
    }

    #[test]
    fn compiled_estimator_plus_env_produces_sound_bound() {
        // End-to-end: compile weighted Node2Vec, evaluate its max estimator
        // through RuntimeEnv, and verify it dominates every actual weight.
        use crate::workload::DynamicWalk;
        use flexi_compiler::{compile, CompileOutcome};
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 3.0)
            .weighted_edge(0, 2, 4.5)
            .weighted_edge(1, 0, 2.0)
            .weighted_edge(2, 0, 1.0)
            .build()
            .unwrap();
        let w = Node2Vec::paper(true);
        let compiled = match compile(&w.spec()).unwrap() {
            CompileOutcome::Supported(c) => c,
            _ => panic!("node2vec must compile"),
        };
        let agg = Aggregates::compute(&g, &compiled.preprocess, &DeviceSpec::tiny());
        for prev in [None, Some(1u32), Some(2u32)] {
            let state = WalkState {
                cur: 0,
                prev,
                step: 1,
            };
            let env = RuntimeEnv {
                graph: &g,
                aggregates: &agg,
                workload: &w,
                state,
            };
            let bound = compiled.max_estimator.eval(&env).unwrap();
            for e in g.edge_range(0) {
                let actual = f64::from(w.weight(&g, &state, e));
                assert!(
                    bound >= actual - 1e-9,
                    "bound {bound} < actual {actual} (prev {prev:?})"
                );
            }
        }
    }
}
