//! Dynamic random-walk workload definitions (paper §2.1).
//!
//! Each workload exists twice, deliberately:
//!
//! 1. as a hand-written Rust [`DynamicWalk::weight`] used by the engines
//!    (fast path), and
//! 2. as a mini-language source ([`DynamicWalk::spec`]) consumed by
//!    Flexi-Compiler to derive the eRJS bound estimators.
//!
//! The test-suite interprets (2) and asserts it equals (1) on random
//! graphs, so the compiler's analysis provably describes the code the
//! engine actually runs.

use flexi_compiler::{workloads as dsl, WalkSpec};
use flexi_graph::{Csr, EdgeId, NodeId};

/// Per-walker state a dynamic walk's weight function may consult.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkState {
    /// Current node.
    pub cur: NodeId,
    /// Previously visited node (`None` on the first step).
    pub prev: Option<NodeId>,
    /// Zero-based step index.
    pub step: usize,
    /// The walk's clock: the timestamp of the last traversed edge (or the
    /// walk's starting instant). Temporal walkers compare edge timestamps
    /// against it; on untimed graphs it stays 0.
    pub time: u64,
}

impl WalkState {
    /// State at the start of a walk from `start` (clock at 0).
    pub fn start(start: NodeId) -> Self {
        Self::start_at(start, 0)
    }

    /// State at the start of a walk from `start` with the clock at `time`
    /// (a time-windowed walk starts its clock at the window's lower bound).
    pub fn start_at(start: NodeId, time: u64) -> Self {
        Self {
            cur: start,
            prev: None,
            step: 0,
            time,
        }
    }

    /// Advances to `next`, leaving the clock unchanged.
    pub fn advance(&mut self, next: NodeId) {
        self.prev = Some(self.cur);
        self.cur = next;
        self.step += 1;
    }

    /// Advances to `next` across an edge stamped `time`, moving the clock
    /// forward to it.
    pub fn advance_at(&mut self, next: NodeId, time: u64) {
        self.advance(next);
        self.time = time;
    }
}

/// A dynamic random-walk workload: the paper's gather-move-update model
/// reduced to its `get_weight` core plus metadata.
///
/// `Send + Sync` because workloads travel inside owned [`WalkRequest`]s
/// (shared `Arc`s that may cross threads) and are read concurrently by
/// host-parallel warp execution.
///
/// [`WalkRequest`]: crate::engine::WalkRequest
pub trait DynamicWalk: Send + Sync {
    /// Short name used in reports and for anonymous walker handles.
    fn name(&self) -> &str;

    /// Transition weight `w̃(cur, target(edge))` for an out-edge of
    /// `st.cur`.
    ///
    /// `edge` is a global edge id inside `g.edge_range(st.cur)`.
    fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32;

    /// DRAM bytes one weight evaluation touches (drives the simulator's
    /// transaction accounting).
    fn bytes_per_weight(&self, g: &Csr) -> usize {
        // Adjacency entry + property weight.
        4 + g.props().bytes_per_weight()
    }

    /// The mini-language specification for Flexi-Compiler.
    fn spec(&self) -> WalkSpec;

    /// Fixed walk length this workload prescribes, if any (MetaPath walks
    /// exactly its schema depth; others use the engine default).
    fn preferred_steps(&self) -> Option<usize> {
        None
    }

    /// Resolves a node-indexed scalar for the estimator environment
    /// (`deg[cur]`, `schema[step]`, …).
    fn env_scalar(&self, g: &Csr, st: &WalkState, array: &str, index: &str) -> Option<f64> {
        match (array, index) {
            ("deg", "cur") => Some(g.degree(st.cur) as f64),
            ("deg", "prev") => Some(g.degree(st.prev.unwrap_or(st.cur)) as f64),
            _ => None,
        }
    }

    /// Hyperparameter lookup for the estimator environment.
    fn hyperparam(&self, name: &str) -> Option<f64> {
        let _ = name;
        None
    }
}

/// Node2Vec (Grover & Leskovec, Eq. 2): second-order walk with return
/// parameter `a` and in-out parameter `b`.
#[derive(Clone, Copy, Debug)]
pub struct Node2Vec {
    /// Return parameter (`1/a` weight for revisiting the previous node).
    pub a: f32,
    /// In-out parameter (`1/b` weight for distance-2 moves).
    pub b: f32,
    /// Whether edge property weights participate (`h` vs. `h ≡ 1`).
    pub weighted: bool,
}

impl Node2Vec {
    /// The paper's evaluation setting: `a = 2.0`, `b = 0.5`.
    pub fn paper(weighted: bool) -> Self {
        Self {
            a: 2.0,
            b: 0.5,
            weighted,
        }
    }
}

impl DynamicWalk for Node2Vec {
    fn name(&self) -> &str {
        if self.weighted {
            "node2vec_weighted"
        } else {
            "node2vec_unweighted"
        }
    }

    fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32 {
        let h = if self.weighted { g.prop(edge) } else { 1.0 };
        let Some(prev) = st.prev else {
            return h; // First step: no history, behave statically.
        };
        let post = g.edge_target(edge);
        if post == prev {
            h / self.a
        } else if g.has_edge(prev, post) {
            h
        } else {
            h / self.b
        }
    }

    fn bytes_per_weight(&self, g: &Csr) -> usize {
        // Adjacency + property + the dist(prev, post) membership probe.
        4 + if self.weighted {
            g.props().bytes_per_weight()
        } else {
            0
        } + 8
    }

    fn spec(&self) -> WalkSpec {
        // One canonical definition per built-in: the source comes from the
        // compiler's spec table; only the hyperparameters are ours.
        let mut spec = dsl::builtin_spec(if self.weighted {
            "node2vec_weighted"
        } else {
            "node2vec_unweighted"
        })
        .expect("canonical spec exists");
        spec.hyperparams = vec![
            ("a".to_string(), f64::from(self.a)),
            ("b".to_string(), f64::from(self.b)),
        ];
        spec
    }

    fn hyperparam(&self, name: &str) -> Option<f64> {
        match name {
            "a" => Some(f64::from(self.a)),
            "b" => Some(f64::from(self.b)),
            _ => None,
        }
    }
}

/// MetaPath (metapath2vec): the walk must follow an edge-label schema.
#[derive(Clone, Debug)]
pub struct MetaPath {
    /// Label schedule; step `i` must traverse an edge labeled
    /// `schema[i % schema.len()]`.
    pub schema: Vec<u8>,
    /// Whether property weights participate.
    pub weighted: bool,
}

impl MetaPath {
    /// The paper's evaluation setting: schema (0, 1, 2, 3, 4), depth 5.
    pub fn paper(weighted: bool) -> Self {
        Self {
            schema: vec![0, 1, 2, 3, 4],
            weighted,
        }
    }

    /// The label required at `step`.
    pub fn wanted_label(&self, step: usize) -> u8 {
        self.schema[step % self.schema.len()]
    }
}

impl DynamicWalk for MetaPath {
    fn name(&self) -> &str {
        if self.weighted {
            "metapath_weighted"
        } else {
            "metapath_unweighted"
        }
    }

    fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32 {
        if g.label(edge) != self.wanted_label(st.step) {
            return 0.0;
        }
        if self.weighted {
            g.prop(edge)
        } else {
            1.0
        }
    }

    fn bytes_per_weight(&self, g: &Csr) -> usize {
        // Adjacency + label + property.
        4 + 1
            + if self.weighted {
                g.props().bytes_per_weight()
            } else {
                0
            }
    }

    fn spec(&self) -> WalkSpec {
        dsl::builtin_spec(if self.weighted {
            "metapath_weighted"
        } else {
            "metapath_unweighted"
        })
        .expect("canonical spec exists")
    }

    fn preferred_steps(&self) -> Option<usize> {
        Some(self.schema.len())
    }

    fn env_scalar(&self, g: &Csr, st: &WalkState, array: &str, index: &str) -> Option<f64> {
        match (array, index) {
            ("schema", "step") => Some(f64::from(self.wanted_label(st.step))),
            _ => match (array, index) {
                ("deg", "cur") => Some(g.degree(st.cur) as f64),
                ("deg", "prev") => Some(g.degree(st.prev.unwrap_or(st.cur)) as f64),
                _ => None,
            },
        }
    }
}

/// Second-order PageRank (Wu et al., Eq. 3).
#[derive(Clone, Copy, Debug)]
pub struct SecondOrderPr {
    /// Mixing parameter γ.
    pub gamma: f32,
}

impl SecondOrderPr {
    /// The paper's evaluation setting: γ = 0.2.
    pub fn paper() -> Self {
        Self { gamma: 0.2 }
    }
}

impl DynamicWalk for SecondOrderPr {
    fn name(&self) -> &str {
        "pagerank_2nd"
    }

    fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32 {
        let h = g.prop(edge);
        let Some(prev) = st.prev else {
            return h;
        };
        let d_cur = g.degree(st.cur).max(1) as f32;
        let d_prev = g.degree(prev).max(1) as f32;
        let maxd = d_cur.max(d_prev);
        let post = g.edge_target(edge);
        let w = if g.has_edge(prev, post) {
            ((1.0 - self.gamma) / d_cur + self.gamma / d_prev) * maxd
        } else {
            ((1.0 - self.gamma) / d_cur) * maxd
        };
        w * h
    }

    fn bytes_per_weight(&self, g: &Csr) -> usize {
        4 + g.props().bytes_per_weight() + 8
    }

    fn spec(&self) -> WalkSpec {
        let mut spec = dsl::builtin_spec("pagerank_2nd").expect("canonical spec exists");
        spec.hyperparams = vec![("gamma".to_string(), f64::from(self.gamma))];
        spec
    }

    fn hyperparam(&self, name: &str) -> Option<f64> {
        (name == "gamma").then_some(f64::from(self.gamma))
    }
}

/// The statically known max transition weight of a workload whose returns
/// are hyperparameter constants (unweighted Node2Vec / MetaPath).
///
/// Systems without bound estimation (NextDoor, KnightKing, ThunderRW) can
/// run rejection sampling only when this is `Some` — the paper's
/// "partially supports dynamic random walk" caveat for NextDoor. The bound
/// is *derived* by compiling the workload's spec and evaluating its
/// `PER_KERNEL` max estimator (no privileged per-workload table); engines
/// on the hot path should read the precomputed
/// [`CompiledWalker::static_bound`](crate::walker::CompiledWalker::static_bound)
/// instead of re-deriving it per call.
pub fn static_max_bound(w: &dyn DynamicWalk) -> Option<f32> {
    crate::walker::spec_static_bound(&w.spec())
}

/// A static first-order walk (DeepWalk-style): `w̃ = h`. Used as the
/// simplest workload in examples and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformWalk;

impl DynamicWalk for UniformWalk {
    fn name(&self) -> &str {
        "uniform_walk"
    }

    fn weight(&self, g: &Csr, _st: &WalkState, edge: EdgeId) -> f32 {
        g.prop(edge)
    }

    fn spec(&self) -> WalkSpec {
        WalkSpec {
            source: "get_weight(edge) { return h[edge]; }".to_string(),
            hyperparams: vec![],
        }
    }
}

/// Forward-in-time walk (temporal subsystem): an edge is traversable only
/// if its timestamp is not older than the walk clock (`WalkState::time`,
/// advanced to each traversed edge's timestamp by the engine), so paths
/// never move backwards in time. Admissible edges weigh their property
/// weight. On untimed graphs every timestamp is 0 and this degenerates to
/// [`UniformWalk`].
///
/// Timestamps are compared through `f64` (exactly like the DSL twin reads
/// them), so clocks above 2⁵³ would lose precision — epoch milliseconds
/// and sequence numbers are far below that.
#[derive(Clone, Copy, Debug, Default)]
pub struct TemporalUniform;

impl DynamicWalk for TemporalUniform {
    fn name(&self) -> &str {
        "temporal_uniform"
    }

    fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32 {
        if (g.time(edge) as f64) < st.time as f64 {
            return 0.0;
        }
        g.prop(edge)
    }

    fn bytes_per_weight(&self, g: &Csr) -> usize {
        // Adjacency + property + the edge timestamp.
        4 + g.props().bytes_per_weight() + 8
    }

    fn spec(&self) -> WalkSpec {
        dsl::builtin_spec("temporal_uniform").expect("canonical spec exists")
    }
}

/// Forward-in-time walk with exponential recency bias: an admissible edge
/// of age `Δ = edge_time − walk_time` weighs `h · exp(−λ·Δ)`, preferring
/// edges close to the walk clock (the classic temporal-walk decay kernel).
///
/// Arithmetic follows the DSL twin op for op with per-operation f32
/// rounding, so both produce bit-identical paths.
#[derive(Clone, Copy, Debug)]
pub struct TemporalExp {
    /// Decay rate λ (per clock unit).
    pub lambda: f64,
}

impl TemporalExp {
    /// The default evaluation setting: λ = 0.1.
    pub fn paper() -> Self {
        Self { lambda: 0.1 }
    }
}

impl DynamicWalk for TemporalExp {
    fn name(&self) -> &str {
        "temporal_exp"
    }

    fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32 {
        let te = g.time(edge) as f64;
        let tw = st.time as f64;
        if te < tw {
            return 0.0;
        }
        // Mirror the interpreter's per-op f32 rounding exactly:
        // age = r(te - tw); x = r(lambda * age); x = r(0 - x);
        // e = r(exp(x)); return r(h * e).
        let age = f64::from((te - tw) as f32);
        let x = f64::from((self.lambda * age) as f32);
        let x = f64::from((0.0 - x) as f32);
        let e = f64::from(x.exp() as f32);
        (f64::from(g.prop(edge)) * e) as f32
    }

    fn bytes_per_weight(&self, g: &Csr) -> usize {
        4 + g.props().bytes_per_weight() + 8
    }

    fn spec(&self) -> WalkSpec {
        let mut spec = dsl::builtin_spec("temporal_exp").expect("canonical spec exists");
        spec.hyperparams = vec![("lambda".to_string(), self.lambda)];
        spec
    }

    fn hyperparam(&self, name: &str) -> Option<f64> {
        (name == "lambda").then_some(self.lambda)
    }
}

/// Forward-in-time walk with linear recency bias: weight falls linearly
/// from `h` at age 0 to 0 at age `span` (a sliding attention window).
#[derive(Clone, Copy, Debug)]
pub struct TemporalLinear {
    /// Window width in clock units; edges older than this weigh 0.
    pub span: f64,
}

impl TemporalLinear {
    /// The default evaluation setting: span = 100 clock units.
    pub fn paper() -> Self {
        Self { span: 100.0 }
    }
}

impl DynamicWalk for TemporalLinear {
    fn name(&self) -> &str {
        "temporal_linear"
    }

    fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32 {
        let te = g.time(edge) as f64;
        let tw = st.time as f64;
        if te < tw {
            return 0.0;
        }
        let age = f64::from((te - tw) as f32);
        if age >= self.span {
            return 0.0;
        }
        // r(h * r(r(span - age) / span)), matching the DSL twin.
        let num = f64::from((self.span - age) as f32);
        let frac = f64::from((num / self.span) as f32);
        (f64::from(g.prop(edge)) * frac) as f32
    }

    fn bytes_per_weight(&self, g: &Csr) -> usize {
        4 + g.props().bytes_per_weight() + 8
    }

    fn spec(&self) -> WalkSpec {
        let mut spec = dsl::builtin_spec("temporal_linear").expect("canonical spec exists");
        spec.hyperparams = vec![("span".to_string(), self.span)];
        spec
    }

    fn hyperparam(&self, name: &str) -> Option<f64> {
        (name == "span").then_some(self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_graph::CsrBuilder;

    /// Graph: 0→{1,2}, 1→{0,2}, 2→{0}; weights = edge id + 1.
    fn g() -> Csr {
        let mut b = CsrBuilder::new(3);
        b.push_weighted(0, 1, 1.0);
        b.push_weighted(0, 2, 2.0);
        b.push_weighted(1, 0, 3.0);
        b.push_weighted(1, 2, 4.0);
        b.push_weighted(2, 0, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn node2vec_branches_match_eq2() {
        let g = g();
        let w = Node2Vec::paper(true);
        // Walker came 0 → 1; scoring node 1's edges {0, 2}.
        let st = WalkState {
            cur: 1,
            prev: Some(0),
            step: 1,
            time: 0,
        };
        let r = g.edge_range(1);
        // Edge 1→0: post == prev → h/a = 3/2.
        assert_eq!(w.weight(&g, &st, r.start), 1.5);
        // Edge 1→2: linked(0, 2) → h = 4.
        assert_eq!(w.weight(&g, &st, r.start + 1), 4.0);
        // Unlinked case: walker 2 → 0, scoring 0→1 (2→1 absent) → h/b.
        let st2 = WalkState {
            cur: 0,
            prev: Some(2),
            step: 1,
            time: 0,
        };
        let r0 = g.edge_range(0);
        assert_eq!(w.weight(&g, &st2, r0.start), 1.0 / 0.5);
    }

    #[test]
    fn node2vec_first_step_is_static() {
        let g = g();
        let w = Node2Vec::paper(true);
        let st = WalkState::start(0);
        let r = g.edge_range(0);
        assert_eq!(w.weight(&g, &st, r.start), 1.0);
        assert_eq!(w.weight(&g, &st, r.start + 1), 2.0);
    }

    #[test]
    fn node2vec_unweighted_ignores_h() {
        let g = g();
        let w = Node2Vec::paper(false);
        let st = WalkState {
            cur: 1,
            prev: Some(0),
            step: 1,
            time: 0,
        };
        let r = g.edge_range(1);
        assert_eq!(w.weight(&g, &st, r.start), 0.5); // 1/a
        assert_eq!(w.weight(&g, &st, r.start + 1), 1.0);
    }

    #[test]
    fn metapath_masks_by_schema() {
        let g = g().with_labels(vec![0, 1, 0, 1, 0]).unwrap();
        let w = MetaPath {
            schema: vec![0, 1],
            weighted: true,
        };
        let r = g.edge_range(0);
        let st0 = WalkState::start(0);
        // Step 0 wants label 0: edge 0 (label 0) passes, edge 1 (label 1)
        // is masked.
        assert_eq!(w.weight(&g, &st0, r.start), 1.0);
        assert_eq!(w.weight(&g, &st0, r.start + 1), 0.0);
        let st1 = WalkState {
            cur: 0,
            prev: Some(1),
            step: 1,
            time: 0,
        };
        assert_eq!(w.weight(&g, &st1, r.start), 0.0);
        assert_eq!(w.weight(&g, &st1, r.start + 1), 2.0);
        // Schema wraps around.
        assert_eq!(w.wanted_label(2), 0);
    }

    #[test]
    fn metapath_prefers_schema_depth() {
        assert_eq!(MetaPath::paper(true).preferred_steps(), Some(5));
        assert_eq!(
            Node2Vec::paper(true).preferred_steps(),
            None,
            "node2vec uses engine default"
        );
    }

    #[test]
    fn second_order_pr_matches_eq3() {
        let g = g();
        let w = SecondOrderPr { gamma: 0.2 };
        // Walker 0 → 1 (deg(0)=2, deg(1)=2, maxd=2); scoring 1→2 where
        // linked(0, 2) holds: ((0.8/2 + 0.2/2) * 2) * h = 1 * 4.
        let st = WalkState {
            cur: 1,
            prev: Some(0),
            step: 1,
            time: 0,
        };
        let r = g.edge_range(1);
        let got = w.weight(&g, &st, r.start + 1);
        assert!((got - 4.0).abs() < 1e-6, "got {got}");
        // Scoring 1→0: post == prev, NOT linked(0,0) → 0.8/2*2*h = 2.4.
        let got = w.weight(&g, &st, r.start);
        assert!((got - 2.4).abs() < 1e-6, "got {got}");
    }

    #[test]
    fn second_order_pr_first_step_is_property_weight() {
        let g = g();
        let w = SecondOrderPr::paper();
        let st = WalkState::start(2);
        assert_eq!(w.weight(&g, &st, g.edge_range(2).start), 5.0);
    }

    #[test]
    fn walk_state_advances() {
        let mut st = WalkState::start(4);
        st.advance(9);
        assert_eq!(st.cur, 9);
        assert_eq!(st.prev, Some(4));
        assert_eq!(st.step, 1);
        assert_eq!(st.time, 0, "plain advance leaves the clock alone");
        st.advance_at(2, 77);
        assert_eq!((st.cur, st.prev, st.step, st.time), (2, Some(9), 2, 77));
        assert_eq!(WalkState::start_at(3, 50).time, 50);
    }

    /// Timed graph: 0→1 @10 (h=1), 0→2 @20 (h=2), 1→2 @30 (h=4), 2→0 @5 (h=5).
    fn timed() -> Csr {
        let mut b = CsrBuilder::new(3);
        b.push_timestamped(0, 1, 1.0, 10);
        b.push_timestamped(0, 2, 2.0, 20);
        b.push_timestamped(1, 2, 4.0, 30);
        b.push_timestamped(2, 0, 5.0, 5);
        b.build().unwrap()
    }

    #[test]
    fn temporal_uniform_enforces_forward_time() {
        let g = timed();
        let w = TemporalUniform;
        let st = WalkState::start_at(0, 15);
        let r = g.edge_range(0);
        assert_eq!(w.weight(&g, &st, r.start), 0.0, "edge@10 is in the past");
        assert_eq!(w.weight(&g, &st, r.start + 1), 2.0, "edge@20 admissible");
        // Clock equal to the edge time is admissible (not strictly newer).
        let st_eq = WalkState::start_at(0, 20);
        assert_eq!(w.weight(&g, &st_eq, r.start + 1), 2.0);
        // On untimed graphs every edge has implicit time 0 and the walk
        // degenerates to the uniform property-weighted walk.
        let ug = super::tests::g();
        let st0 = WalkState::start(0);
        let r0 = ug.edge_range(0);
        assert_eq!(w.weight(&ug, &st0, r0.start), 1.0);
        assert_eq!(w.weight(&ug, &st0, r0.start + 1), 2.0);
    }

    #[test]
    fn temporal_exp_decays_with_age() {
        let g = timed();
        let w = TemporalExp::paper();
        let st = WalkState::start_at(0, 10);
        let r = g.edge_range(0);
        // Edge@10: age 0 → full property weight.
        assert_eq!(w.weight(&g, &st, r.start), 1.0);
        // Edge@20: age 10, λ=0.1 → 2·exp(-1).
        let got = w.weight(&g, &st, r.start + 1);
        assert!(
            (f64::from(got) - 2.0 * (-1.0f64).exp()).abs() < 1e-6,
            "got {got}"
        );
        // Past edge still hard-masked regardless of decay.
        let late = WalkState::start_at(0, 25);
        assert_eq!(w.weight(&g, &late, r.start + 1), 0.0);
    }

    #[test]
    fn temporal_linear_hits_zero_at_span() {
        let g = timed();
        let st = WalkState::start_at(0, 10);
        let r = g.edge_range(0);
        // span=100: edge@20 has age 10 → 2·(90/100).
        let w = TemporalLinear::paper();
        let got = w.weight(&g, &st, r.start + 1);
        assert!((f64::from(got) - 1.8).abs() < 1e-6, "got {got}");
        // A narrow span masks the same edge entirely.
        let narrow = TemporalLinear { span: 10.0 };
        assert_eq!(narrow.weight(&g, &st, r.start + 1), 0.0);
        assert_eq!(narrow.weight(&g, &st, r.start), 1.0, "age 0 keeps full h");
    }

    #[test]
    fn temporal_hyperparams_and_specs_resolve() {
        let e = TemporalExp::paper();
        assert_eq!(e.hyperparam("lambda"), Some(0.1));
        assert_eq!(e.hyperparam("walk_time"), None, "clock is not a knob");
        let l = TemporalLinear { span: 42.0 };
        assert_eq!(l.hyperparam("span"), Some(42.0));
        assert_eq!(l.spec().hyperparams, vec![("span".to_string(), 42.0)]);
        assert!(TemporalUniform.spec().source.contains("edge_time"));
    }

    #[test]
    fn temporal_dsl_interpreter_is_bit_identical() {
        use flexi_compiler::{interpret_f32, parse_program, InterpEnv};
        struct Env<'a> {
            g: &'a Csr,
            st: &'a WalkState,
            edge: usize,
            hyper: Vec<(&'static str, f64)>,
        }
        impl InterpEnv for Env<'_> {
            fn var(&self, name: &str) -> Option<f64> {
                match name {
                    "edge" => Some(self.edge as f64),
                    "edge_time" => Some(self.g.time(self.edge) as f64),
                    "walk_time" => Some(self.st.time as f64),
                    _ => self.hyper.iter().find(|(k, _)| *k == name).map(|(_, v)| *v),
                }
            }
            fn index(&self, array: &str, index: f64) -> Option<f64> {
                (array == "h").then(|| f64::from(self.g.prop(index as usize)))
            }
            fn call(&self, name: &str, args: &[f64]) -> Option<f64> {
                // The engine's env quantizes exp itself: the interpreter
                // rounds only arithmetic results, not call results.
                match (name, args) {
                    ("exp", [x]) => Some(f64::from(x.exp() as f32)),
                    _ => None,
                }
            }
        }

        type WorkloadCase = (Box<dyn DynamicWalk>, Vec<(&'static str, f64)>);
        let g = timed();
        let workloads: Vec<WorkloadCase> = vec![
            (Box::new(TemporalUniform), vec![]),
            (Box::new(TemporalExp { lambda: 0.3 }), vec![("lambda", 0.3)]),
            (
                Box::new(TemporalLinear { span: 17.0 }),
                vec![("span", 17.0)],
            ),
        ];
        for (w, hyper) in &workloads {
            let program = parse_program(&w.spec().source).unwrap();
            for cur in 0..3u32 {
                for time in [0u64, 5, 10, 15, 20, 27, 30, 1000] {
                    let st = WalkState::start_at(cur, time);
                    for edge in g.edge_range(cur) {
                        let rust = w.weight(&g, &st, edge);
                        let env = Env {
                            g: &g,
                            st: &st,
                            edge,
                            hyper: hyper.clone(),
                        };
                        let dsl_val = interpret_f32(&program, &env).unwrap();
                        // Bit-identical, not merely close: the native twins
                        // replay the interpreter's per-op f32 rounding.
                        assert_eq!(
                            f64::from(rust),
                            dsl_val,
                            "{}: cur {cur} time {time} edge {edge}",
                            w.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn env_scalars_resolve() {
        let g = g();
        let st = WalkState {
            cur: 1,
            prev: Some(2),
            step: 0,
            time: 0,
        };
        let n2v = Node2Vec::paper(true);
        assert_eq!(n2v.env_scalar(&g, &st, "deg", "cur"), Some(2.0));
        assert_eq!(n2v.env_scalar(&g, &st, "deg", "prev"), Some(1.0));
        assert_eq!(n2v.env_scalar(&g, &st, "schema", "step"), None);
        let mp = MetaPath::paper(false);
        assert_eq!(mp.env_scalar(&g, &st, "schema", "step"), Some(0.0));
    }

    #[test]
    fn hyperparams_resolve() {
        let n2v = Node2Vec::paper(true);
        assert_eq!(n2v.hyperparam("a"), Some(2.0));
        assert_eq!(n2v.hyperparam("b"), Some(0.5));
        assert_eq!(n2v.hyperparam("gamma"), None);
        let gamma = SecondOrderPr::paper().hyperparam("gamma").unwrap();
        assert!((gamma - 0.2).abs() < 1e-6);
    }

    #[test]
    fn dsl_interpreter_agrees_with_rust_weights() {
        use flexi_compiler::{interpret, parse_program, InterpEnv};
        // Adapter exposing graph + state to the DSL interpreter.
        struct Env<'a> {
            g: &'a Csr,
            st: &'a WalkState,
            edge: usize,
            hyper: Vec<(&'static str, f64)>,
        }
        impl InterpEnv for Env<'_> {
            fn var(&self, name: &str) -> Option<f64> {
                match name {
                    "edge" => Some(self.edge as f64),
                    "prev" => Some(f64::from(self.st.prev.unwrap_or(self.st.cur))),
                    "has_prev" => Some(if self.st.prev.is_some() { 1.0 } else { 0.0 }),
                    "cur" => Some(f64::from(self.st.cur)),
                    "step" => Some(self.st.step as f64),
                    _ => self.hyper.iter().find(|(k, _)| *k == name).map(|(_, v)| *v),
                }
            }
            fn index(&self, array: &str, index: f64) -> Option<f64> {
                let i = index as usize;
                match array {
                    "h" => Some(f64::from(self.g.prop(i))),
                    "adj" => Some(f64::from(self.g.edge_target(i))),
                    "label" => Some(f64::from(self.g.label(i))),
                    "deg" => Some(self.g.degree(i as u32).max(1) as f64),
                    "schema" => Some(f64::from([0u8, 1, 2, 3, 4][i % 5])),
                    _ => None,
                }
            }
            fn call(&self, name: &str, args: &[f64]) -> Option<f64> {
                match (name, args) {
                    ("linked", [a, b]) => Some(f64::from(self.g.has_edge(*a as u32, *b as u32))),
                    _ => None,
                }
            }
        }

        type WorkloadCase = (Box<dyn DynamicWalk>, Vec<(&'static str, f64)>);
        let g = g().with_labels(vec![0, 1, 2, 3, 4]).unwrap();
        let workloads: Vec<WorkloadCase> = vec![
            (
                Box::new(Node2Vec::paper(true)),
                vec![("a", 2.0), ("b", 0.5)],
            ),
            (Box::new(MetaPath::paper(true)), vec![]),
            (Box::new(SecondOrderPr::paper()), vec![("gamma", 0.2)]),
        ];
        for (w, hyper) in &workloads {
            let program = parse_program(&w.spec().source).unwrap();
            for cur in 0..3u32 {
                for prev in [None, Some(0), Some(1), Some(2)] {
                    for step in 0..3usize {
                        let st = WalkState {
                            cur,
                            prev,
                            step,
                            time: 0,
                        };
                        for edge in g.edge_range(cur) {
                            let rust = w.weight(&g, &st, edge);
                            let env = Env {
                                g: &g,
                                st: &st,
                                edge,
                                hyper: hyper.clone(),
                            };
                            let dsl_val = interpret(&program, &env).unwrap();
                            assert!(
                                (f64::from(rust) - dsl_val).abs() < 1e-5,
                                "{}: cur {cur} prev {prev:?} step {step} edge {edge}: \
                                 rust {rust} vs dsl {dsl_val}",
                                w.name()
                            );
                        }
                    }
                }
            }
        }
    }
}
