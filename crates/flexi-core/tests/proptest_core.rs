//! Property-style tests for runtime selection and engine invariants,
//! driven by seeded sweeps.
//!
//! The original suite used an external property-testing harness; the
//! cases here are generated from a seeded [`SplitMix64`] so the workspace
//! builds offline with zero external dependencies.

use flexi_core::{
    sampler_ids, CostModel, FlexiWalkerEngine, Node2Vec, QueryQueue, SamplerRegistry,
    SelectionStrategy, WalkConfig, WalkEngine, WalkRequest, WalkState,
};
use flexi_gpu_sim::DeviceSpec;
use flexi_graph::{gen, WeightModel};
use flexi_rng::{RandomSource, SplitMix64};

const CASES: usize = 256;

fn rng() -> SplitMix64 {
    SplitMix64::new(0xC04E_0000_0000_0003)
}

fn pick(registry: &SamplerRegistry, m: &CostModel, max: f64, sum: f64) -> &'static str {
    m.select(registry, 100.0, Some(max), Some(sum))
        .expect("builtin registry selects")
        .1
        .id()
}

/// Eq. 11 monotonicity: raising the max estimate (more skew) can only
/// move the choice toward reservoir sampling, never toward rejection.
#[test]
fn cost_model_monotone_in_skew() {
    let registry = SamplerRegistry::builtin();
    let mut r = rng();
    for _ in 0..CASES {
        let ratio = 1.0 + (r.bounded(63_000) as f64) / 1000.0;
        let sum = 0.1 + (r.bounded(1_000_000) as f64);
        let max_lo = 0.01 + (r.bounded(1_000_000) as f64) / 1000.0;
        let bump = 1.0 + (r.bounded(999_000) as f64) / 1000.0;
        let m = CostModel {
            edge_cost_ratio: ratio,
        };
        let lo = pick(&registry, &m, max_lo, sum);
        let hi = pick(&registry, &m, max_lo + bump, sum);
        // erjs -> ervs transitions are allowed; ervs -> erjs is not.
        assert!(
            !(lo == sampler_ids::ERVS && hi == sampler_ids::ERJS),
            "raising max flipped ervs -> erjs (ratio {ratio}, sum {sum})"
        );
    }
}

/// Eq. 11 monotonicity in the sum: a larger Σw̃ never flips toward
/// reservoir sampling.
#[test]
fn cost_model_monotone_in_sum() {
    let registry = SamplerRegistry::builtin();
    let mut r = rng();
    for _ in 0..CASES {
        let ratio = 1.0 + (r.bounded(63_000) as f64) / 1000.0;
        let max = 0.01 + (r.bounded(1_000_000) as f64) / 1000.0;
        let sum_lo = 0.1 + (r.bounded(1_000_000) as f64);
        let bump = 1.0 + (r.bounded(1_000_000) as f64);
        let m = CostModel {
            edge_cost_ratio: ratio,
        };
        let lo = pick(&registry, &m, max, sum_lo);
        let hi = pick(&registry, &m, max, sum_lo + bump);
        assert!(
            !(lo == sampler_ids::ERJS && hi == sampler_ids::ERVS),
            "raising sum flipped erjs -> ervs (ratio {ratio}, max {max})"
        );
    }
}

/// The queue hands out exactly 0..len, once each, in order.
#[test]
fn queue_hands_out_every_index_once() {
    let mut r = rng();
    for _ in 0..CASES {
        let len = r.bounded(500) as usize;
        let q = QueryQueue::new(len);
        let mut seen = Vec::new();
        while let Some(i) = q.pop() {
            seen.push(i);
        }
        assert_eq!(seen, (0..len).collect::<Vec<_>>());
    }
}

/// Walk state advance is a pure shift register.
#[test]
fn walk_state_advance_shifts() {
    let mut r = rng();
    for _ in 0..CASES {
        let start = r.next_u32();
        let hops: Vec<u32> = (0..1 + r.bounded(19)).map(|_| r.next_u32()).collect();
        let mut st = WalkState::start(start);
        let mut prev = start;
        for (i, &h) in hops.iter().enumerate() {
            st.advance(h);
            assert_eq!(st.cur, h);
            assert_eq!(st.prev, Some(prev));
            assert_eq!(st.step, i + 1);
            prev = h;
        }
    }
}

/// Engine invariant: for any seed and strategy, paths start at their
/// query node, never exceed the step limit, and only traverse edges.
#[test]
fn engine_paths_always_valid() {
    let g = gen::rmat(7, 512, gen::RmatParams::SOCIAL, 13);
    let g = WeightModel::UniformReal.apply(g, 13);
    let strategies = [
        SelectionStrategy::CostModel,
        SelectionStrategy::Random,
        SelectionStrategy::RJS_ONLY,
        SelectionStrategy::RVS_ONLY,
    ];
    let mut r = rng();
    for _ in 0..64 {
        let seed = r.bounded(1000);
        let strategy = strategies[r.bounded(4) as usize];
        let engine = FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), strategy);
        let cfg = WalkConfig {
            steps: 6,
            record_paths: true,
            seed,
            ..WalkConfig::default()
        };
        let queries = [0u32, 17, 63, 101];
        let report = engine
            .run(&WalkRequest::new(&g, &Node2Vec::paper(true), &queries).with_config(cfg))
            .unwrap();
        let paths = report.paths.as_ref().unwrap();
        for (q, path) in paths.iter().enumerate() {
            assert_eq!(path[0], queries[q]);
            assert!(path.len() <= 7);
            for pair in path.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }
}
