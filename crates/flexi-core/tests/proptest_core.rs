//! Property-style tests for runtime selection and engine invariants,
//! driven by seeded sweeps.
//!
//! The original suite used an external property-testing harness; the
//! cases here are generated from a seeded [`SplitMix64`] so the workspace
//! builds offline with zero external dependencies.

use flexi_core::{
    sampler_ids, CostModel, FlexiWalkerEngine, GraphHandle, Node2Vec, QueryQueue, SamplerRegistry,
    SelectionStrategy, WalkConfig, WalkEngine, WalkRequest, WalkState,
};
use flexi_gpu_sim::DeviceSpec;
use flexi_graph::{gen, WeightModel};
use flexi_rng::{RandomSource, SplitMix64};

const CASES: usize = 256;

fn rng() -> SplitMix64 {
    SplitMix64::new(0xC04E_0000_0000_0003)
}

fn pick(registry: &SamplerRegistry, m: &CostModel, max: f64, sum: f64) -> &'static str {
    m.select_registry(registry, 100.0, Some(max), Some(sum))
        .expect("builtin registry selects")
        .sampler
        .id()
}

/// Eq. 11 monotonicity: raising the max estimate (more skew) can only
/// move the choice toward reservoir sampling, never toward rejection.
#[test]
fn cost_model_monotone_in_skew() {
    let registry = SamplerRegistry::builtin();
    let mut r = rng();
    for _ in 0..CASES {
        let ratio = 1.0 + (r.bounded(63_000) as f64) / 1000.0;
        let sum = 0.1 + (r.bounded(1_000_000) as f64);
        let max_lo = 0.01 + (r.bounded(1_000_000) as f64) / 1000.0;
        let bump = 1.0 + (r.bounded(999_000) as f64) / 1000.0;
        let m = CostModel::with_ratio(ratio);
        let lo = pick(&registry, &m, max_lo, sum);
        let hi = pick(&registry, &m, max_lo + bump, sum);
        // erjs -> ervs transitions are allowed; ervs -> erjs is not.
        assert!(
            !(lo == sampler_ids::ERVS && hi == sampler_ids::ERJS),
            "raising max flipped ervs -> erjs (ratio {ratio}, sum {sum})"
        );
    }
}

/// Eq. 11 monotonicity in the sum: a larger Σw̃ never flips toward
/// reservoir sampling.
#[test]
fn cost_model_monotone_in_sum() {
    let registry = SamplerRegistry::builtin();
    let mut r = rng();
    for _ in 0..CASES {
        let ratio = 1.0 + (r.bounded(63_000) as f64) / 1000.0;
        let max = 0.01 + (r.bounded(1_000_000) as f64) / 1000.0;
        let sum_lo = 0.1 + (r.bounded(1_000_000) as f64);
        let bump = 1.0 + (r.bounded(1_000_000) as f64);
        let m = CostModel::with_ratio(ratio);
        let lo = pick(&registry, &m, max, sum_lo);
        let hi = pick(&registry, &m, max, sum_lo + bump);
        assert!(
            !(lo == sampler_ids::ERJS && hi == sampler_ids::ERVS),
            "raising sum flipped erjs -> ervs (ratio {ratio}, max {max})"
        );
    }
}

/// The queue hands out exactly 0..len, once each, in order.
#[test]
fn queue_hands_out_every_index_once() {
    let mut r = rng();
    for _ in 0..CASES {
        let len = r.bounded(500) as usize;
        let q = QueryQueue::new(len);
        let mut seen = Vec::new();
        while let Some(i) = q.pop() {
            seen.push(i);
        }
        assert_eq!(seen, (0..len).collect::<Vec<_>>());
    }
}

/// Walk state advance is a pure shift register.
#[test]
fn walk_state_advance_shifts() {
    let mut r = rng();
    for _ in 0..CASES {
        let start = r.next_u32();
        let hops: Vec<u32> = (0..1 + r.bounded(19)).map(|_| r.next_u32()).collect();
        let mut st = WalkState::start(start);
        let mut prev = start;
        for (i, &h) in hops.iter().enumerate() {
            st.advance(h);
            assert_eq!(st.cur, h);
            assert_eq!(st.prev, Some(prev));
            assert_eq!(st.step, i + 1);
            prev = h;
        }
    }
}

/// Engine invariant: for any seed and strategy, paths start at their
/// query node, never exceed the step limit, and only traverse edges.
#[test]
fn engine_paths_always_valid() {
    let g = gen::rmat(7, 512, gen::RmatParams::SOCIAL, 13);
    let g = GraphHandle::new(WeightModel::UniformReal.apply(g, 13));
    let csr = g.graph();
    let strategies = [
        SelectionStrategy::CostModel,
        SelectionStrategy::Random,
        SelectionStrategy::RJS_ONLY,
        SelectionStrategy::RVS_ONLY,
    ];
    let mut r = rng();
    for _ in 0..64 {
        let seed = r.bounded(1000);
        let strategy = strategies[r.bounded(4) as usize];
        let engine = FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), strategy);
        let cfg = WalkConfig {
            steps: 6,
            record_paths: true,
            seed,
            ..WalkConfig::default()
        };
        let queries = [0u32, 17, 63, 101];
        let report = engine
            .run(&WalkRequest::new(&g, &Node2Vec::paper(true), &queries).with_config(cfg))
            .unwrap();
        let paths = report.paths.as_ref().unwrap();
        for (q, path) in paths.iter().enumerate() {
            assert_eq!(path[0], queries[q]);
            assert!(path.len() <= 7);
            for pair in path.windows(2) {
                assert!(csr.has_edge(pair[0], pair[1]));
            }
        }
    }
}

/// Incremental-refresh correctness sweep: for random mixed update batches
/// (weight-only and structural), `GraphHandle::apply_updates` followed by
/// `Aggregates::refresh_nodes` over the reported dirty set must be
/// *bit-identical* to a from-scratch `Aggregates::compute` on the updated
/// graph — the invariant that lets the session serve walks over live
/// updates without ever rebuilding unchanged aggregates.
#[test]
fn incremental_refresh_matches_full_rebuild() {
    use flexi_core::{compile_workload, Aggregates, GraphUpdate};

    let w = Node2Vec::paper(true);
    let artifacts = compile_workload(&w);
    let requests = &artifacts
        .compiled
        .as_ref()
        .expect("weighted Node2Vec compiles")
        .preprocess;
    let spec = DeviceSpec::tiny();
    let mut r = rng();

    for case in 0..16u64 {
        let base = gen::rmat(7, 768, gen::RmatParams::SOCIAL, 100 + case);
        let base = WeightModel::UniformReal.apply(base, 100 + case);
        let handle = GraphHandle::new(base);
        let mut agg = Aggregates::compute(&handle.graph(), requests, &spec);

        for round in 0..6 {
            let g = handle.graph();
            let n = g.num_nodes() as u32;
            let m = g.num_edges();
            let mut batch = Vec::new();
            // Weight-only rounds and structural rounds alternate; structural
            // rounds mix all three update kinds.
            let structural = round % 2 == 1;
            for _ in 0..4 {
                batch.push(GraphUpdate::SetWeight {
                    edge: r.bounded(m as u64) as usize,
                    weight: 0.25 + (r.bounded(4000) as f32) / 100.0,
                });
            }
            if structural {
                for _ in 0..3 {
                    batch.push(GraphUpdate::AddEdge {
                        src: r.bounded(u64::from(n)) as u32,
                        dst: r.bounded(u64::from(n)) as u32,
                        weight: 0.5 + (r.bounded(2000) as f32) / 100.0,
                        label: 0,
                    });
                }
                let victim = r.bounded(u64::from(n)) as u32;
                if g.degree(victim) > 0 {
                    batch.push(GraphUpdate::RemoveEdge {
                        src: victim,
                        dst: g.neighbors(victim)[0],
                    });
                }
            }

            let outcome = handle.apply_updates(&batch).unwrap();
            assert_eq!(outcome.structural, structural, "case {case} round {round}");
            let refreshed = agg.refresh_nodes(&handle.graph(), &outcome.dirty_nodes);
            assert_eq!(
                refreshed,
                outcome.dirty_nodes.len(),
                "refresh count must equal the dirty frontier"
            );

            let fresh = Aggregates::compute(&handle.graph(), requests, &spec);
            assert!(
                agg.content_eq(&fresh),
                "case {case} round {round}: incremental refresh diverged from full rebuild"
            );
        }
    }
}
