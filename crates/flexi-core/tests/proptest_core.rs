//! Property-based tests for runtime selection and engine invariants.

use flexi_core::{
    CostModel, FlexiWalkerEngine, Node2Vec, QueryQueue, SamplerChoice, SelectionStrategy,
    WalkConfig, WalkEngine, WalkState,
};
use flexi_gpu_sim::DeviceSpec;
use flexi_graph::{gen, WeightModel};
use proptest::prelude::*;

proptest! {
    /// Eq. 11 monotonicity: raising the max estimate (more skew) can only
    /// move the choice toward reservoir sampling, never toward rejection.
    #[test]
    fn cost_model_monotone_in_skew(
        ratio in 1.0f64..64.0,
        sum in 0.1f64..1e6,
        max_lo in 0.01f64..1e3,
        bump in 1.0f64..1e3,
    ) {
        let m = CostModel { edge_cost_ratio: ratio };
        let lo = m.choose(Some(max_lo), Some(sum));
        let hi = m.choose(Some(max_lo + bump), Some(sum));
        // Rjs -> Rvs transitions are allowed; Rvs -> Rjs is not.
        prop_assert!(
            !(lo == SamplerChoice::Rvs && hi == SamplerChoice::Rjs),
            "raising max flipped Rvs -> Rjs"
        );
    }

    /// Eq. 11 monotonicity in the sum: a larger Σw̃ never flips toward
    /// reservoir sampling.
    #[test]
    fn cost_model_monotone_in_sum(
        ratio in 1.0f64..64.0,
        max in 0.01f64..1e3,
        sum_lo in 0.1f64..1e6,
        bump in 1.0f64..1e6,
    ) {
        let m = CostModel { edge_cost_ratio: ratio };
        let lo = m.choose(Some(max), Some(sum_lo));
        let hi = m.choose(Some(max), Some(sum_lo + bump));
        prop_assert!(
            !(lo == SamplerChoice::Rjs && hi == SamplerChoice::Rvs),
            "raising sum flipped Rjs -> Rvs"
        );
    }

    /// The queue hands out exactly 0..len, once each, in order.
    #[test]
    fn queue_hands_out_every_index_once(len in 0usize..500) {
        let q = QueryQueue::new(len);
        let mut seen = Vec::new();
        while let Some(i) = q.pop() {
            seen.push(i);
        }
        prop_assert_eq!(seen, (0..len).collect::<Vec<_>>());
    }

    /// Walk state advance is a pure shift register.
    #[test]
    fn walk_state_advance_shifts(start: u32, hops in proptest::collection::vec(any::<u32>(), 1..20)) {
        let mut st = WalkState::start(start);
        let mut prev = start;
        for (i, &h) in hops.iter().enumerate() {
            st.advance(h);
            prop_assert_eq!(st.cur, h);
            prop_assert_eq!(st.prev, Some(prev));
            prop_assert_eq!(st.step, i + 1);
            prev = h;
        }
    }

    /// Engine invariant: for any seed and strategy, paths start at their
    /// query node, never exceed the step limit, and only traverse edges.
    #[test]
    fn engine_paths_always_valid(seed in 0u64..1000, strat_idx in 0usize..4) {
        let g = gen::rmat(7, 512, gen::RmatParams::SOCIAL, 13);
        let g = WeightModel::UniformReal.apply(g, 13);
        let strategy = [
            SelectionStrategy::CostModel,
            SelectionStrategy::Random,
            SelectionStrategy::RjsOnly,
            SelectionStrategy::RvsOnly,
        ][strat_idx];
        let engine = FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), strategy);
        let cfg = WalkConfig {
            steps: 6,
            record_paths: true,
            seed,
            ..WalkConfig::default()
        };
        let queries = [0u32, 17, 63, 101];
        let report = engine.run(&g, &Node2Vec::paper(true), &queries, &cfg).unwrap();
        let paths = report.paths.as_ref().unwrap();
        for (q, path) in paths.iter().enumerate() {
            prop_assert_eq!(path[0], queries[q]);
            prop_assert!(path.len() <= 7);
            for pair in path.windows(2) {
                prop_assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }
}
