//! Kernel launch, SM scheduling, and device memory tracking.

use crate::cost::CostStats;
use crate::spec::DeviceSpec;
use crate::warp::WarpCtx;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Errors raised by the simulated device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A device allocation exceeded remaining VRAM.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Tracks simulated device-memory allocations against VRAM capacity.
///
/// Baselines that build auxiliary structures (NextDoor's transit sort,
/// Skywalker's alias tables) allocate here, so oversized runs fail with
/// the same OOM the paper reports.
#[derive(Debug)]
pub struct MemPool {
    capacity: usize,
    allocated: AtomicUsize,
}

impl MemPool {
    /// Creates a pool with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            allocated: AtomicUsize::new(0),
        }
    }

    /// Attempts to reserve `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the reservation would exceed
    /// capacity; the pool is left unchanged in that case.
    pub fn try_alloc(&self, bytes: usize) -> Result<(), SimError> {
        let mut cur = self.allocated.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(bytes);
            if new > self.capacity {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    available: self.capacity - cur,
                });
            }
            match self.allocated.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `bytes` (saturating at zero).
    pub fn free(&self, bytes: usize) {
        let mut cur = self.allocated.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_sub(bytes);
            match self.allocated.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Currently reserved bytes.
    pub fn allocated(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Releases everything.
    pub fn reset(&self) {
        self.allocated.store(0, Ordering::Relaxed);
    }
}

/// Result of a kernel launch.
#[derive(Debug)]
pub struct LaunchReport<T> {
    /// Per-warp kernel outputs, indexed by warp id.
    pub outputs: Vec<T>,
    /// Activity aggregated over all warps.
    pub stats: CostStats,
    /// Makespan in cycles after scheduling warps onto SM slots.
    pub cycles: u64,
    /// Makespan converted to seconds at the device clock.
    pub sim_seconds: f64,
    /// Per-warp cycle costs (diagnostics and scheduling tests).
    pub per_warp_cycles: Vec<u64>,
}

/// A simulated GPU: a [`DeviceSpec`] plus a VRAM pool.
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    pool: MemPool,
}

impl Device {
    /// Creates a device from `spec`.
    pub fn new(spec: DeviceSpec) -> Self {
        let pool = MemPool::new(spec.vram_bytes);
        Self { spec, pool }
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The VRAM pool.
    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// Launches `kernel` over `num_warps` warps sequentially.
    ///
    /// Deterministic: warp `w` always sees Philox streams derived from
    /// `(seed, w)`, regardless of host scheduling.
    pub fn launch<T, F>(&self, num_warps: usize, seed: u64, kernel: F) -> LaunchReport<T>
    where
        F: Fn(&mut WarpCtx) -> T,
    {
        let mut outputs = Vec::with_capacity(num_warps);
        let mut per_warp_cycles = Vec::with_capacity(num_warps);
        let mut stats = CostStats::default();
        for w in 0..num_warps {
            let mut ctx = WarpCtx::with_transaction_bytes(w, seed, self.spec.transaction_bytes);
            outputs.push(kernel(&mut ctx));
            let s = ctx.into_stats();
            per_warp_cycles.push(s.cycles(&self.spec));
            stats.add(&s);
        }
        self.report(outputs, stats, per_warp_cycles)
    }

    /// Launches `kernel` over `num_warps` warps using `host_threads` OS
    /// threads. Outputs and costs are identical to [`Device::launch`]; only
    /// wall-clock time differs.
    pub fn launch_parallel<T, F>(
        &self,
        num_warps: usize,
        host_threads: usize,
        seed: u64,
        kernel: F,
    ) -> LaunchReport<T>
    where
        T: Send,
        F: Fn(&mut WarpCtx) -> T + Sync,
    {
        let host_threads = host_threads.max(1).min(num_warps.max(1));
        if host_threads <= 1 {
            return self.launch(num_warps, seed, kernel);
        }
        let next_warp = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<(T, u64, CostStats)>>> =
            Mutex::new((0..num_warps).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..host_threads {
                scope.spawn(|| loop {
                    let w = next_warp.fetch_add(1, Ordering::Relaxed);
                    if w >= num_warps {
                        break;
                    }
                    let mut ctx =
                        WarpCtx::with_transaction_bytes(w, seed, self.spec.transaction_bytes);
                    let out = kernel(&mut ctx);
                    let s = ctx.into_stats();
                    let cycles = s.cycles(&self.spec);
                    results.lock().expect("warp result lock")[w] = Some((out, cycles, s));
                });
            }
        });
        let mut outputs = Vec::with_capacity(num_warps);
        let mut per_warp_cycles = Vec::with_capacity(num_warps);
        let mut stats = CostStats::default();
        for slot in results.into_inner().expect("warp result lock") {
            let (out, cycles, s) = slot.expect("all warps executed");
            outputs.push(out);
            per_warp_cycles.push(cycles);
            stats.add(&s);
        }
        self.report(outputs, stats, per_warp_cycles)
    }

    fn report<T>(
        &self,
        outputs: Vec<T>,
        stats: CostStats,
        per_warp_cycles: Vec<u64>,
    ) -> LaunchReport<T> {
        let makespan = schedule_makespan(&per_warp_cycles, self.spec.total_warp_slots());
        // DRAM bandwidth bounds the whole kernel regardless of slot count.
        let bw_cycles = (self.spec.bandwidth_seconds(&stats) * self.spec.clock_ghz * 1e9) as u64;
        let cycles = makespan.max(bw_cycles);
        let sim_seconds = self.spec.cycles_to_seconds(cycles);
        LaunchReport {
            outputs,
            stats,
            cycles,
            sim_seconds,
            per_warp_cycles,
        }
    }
}

/// Greedy list scheduling of warp costs onto `slots` parallel SM slots.
///
/// Models the hardware's dynamic warp scheduler at first order: each new
/// warp is placed on the least-loaded slot; the kernel finishes when the
/// busiest slot drains.
pub fn schedule_makespan(per_warp_cycles: &[u64], slots: usize) -> u64 {
    assert!(slots > 0, "device must have at least one warp slot");
    if per_warp_cycles.is_empty() {
        return 0;
    }
    let mut heap: BinaryHeap<Reverse<u64>> = (0..slots.min(per_warp_cycles.len()))
        .map(|_| Reverse(0u64))
        .collect();
    for &c in per_warp_cycles {
        let Reverse(load) = heap.pop().expect("heap non-empty");
        heap.push(Reverse(load + c));
    }
    heap.into_iter().map(|Reverse(l)| l).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mempool_allocates_and_frees() {
        let p = MemPool::new(100);
        assert!(p.try_alloc(60).is_ok());
        assert_eq!(p.allocated(), 60);
        let err = p.try_alloc(50).unwrap_err();
        assert_eq!(
            err,
            SimError::OutOfMemory {
                requested: 50,
                available: 40
            }
        );
        p.free(30);
        assert!(p.try_alloc(50).is_ok());
        p.reset();
        assert_eq!(p.allocated(), 0);
    }

    #[test]
    fn mempool_free_saturates() {
        let p = MemPool::new(10);
        p.free(5);
        assert_eq!(p.allocated(), 0);
    }

    #[test]
    fn makespan_single_slot_is_sum() {
        assert_eq!(schedule_makespan(&[3, 4, 5], 1), 12);
    }

    #[test]
    fn makespan_many_slots_is_max() {
        assert_eq!(schedule_makespan(&[3, 4, 5], 10), 5);
    }

    #[test]
    fn makespan_balances_greedily() {
        // Two slots, loads {5, 4, 3, 3}: greedy gives {5+3, 4+3} = 8 vs 7.
        assert_eq!(schedule_makespan(&[5, 4, 3, 3], 2), 8);
    }

    #[test]
    fn makespan_empty_is_zero() {
        assert_eq!(schedule_makespan(&[], 4), 0);
    }

    #[test]
    fn launch_collects_outputs_in_warp_order() {
        let dev = Device::new(DeviceSpec::tiny());
        let report = dev.launch(8, 1, |ctx| ctx.warp_id() * 10);
        assert_eq!(report.outputs, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn launch_aggregates_stats_and_time() {
        let dev = Device::new(DeviceSpec::tiny());
        let report = dev.launch(4, 1, |ctx| {
            ctx.read_coalesced(128);
            ctx.alu(10);
        });
        assert_eq!(report.stats.coalesced_transactions, 16);
        assert_eq!(report.stats.alu_ops, 40);
        assert!(report.cycles > 0);
        assert!(report.sim_seconds > 0.0);
        assert_eq!(report.per_warp_cycles.len(), 4);
    }

    #[test]
    fn parallel_launch_matches_sequential() {
        let dev = Device::new(DeviceSpec::tiny());
        let seq = dev.launch(16, 7, |ctx| {
            let x = ctx.draw_u32(0);
            ctx.read_random(4);
            x
        });
        let par = dev.launch_parallel(16, 4, 7, |ctx| {
            let x = ctx.draw_u32(0);
            ctx.read_random(4);
            x
        });
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq.cycles, par.cycles);
    }

    #[test]
    fn zero_warp_launch_is_empty() {
        let dev = Device::new(DeviceSpec::tiny());
        let report = dev.launch(0, 1, |_| ());
        assert!(report.outputs.is_empty());
        assert_eq!(report.cycles, 0);
    }

    #[test]
    fn more_parallel_slots_shorten_kernels() {
        let wide = Device::new(DeviceSpec::a6000());
        let narrow = Device::new(DeviceSpec::tiny());
        let work = |ctx: &mut WarpCtx| ctx.read_coalesced(1 << 12);
        let rw = wide.launch(1000, 1, work);
        let rn = narrow.launch(1000, 1, work);
        assert!(rw.cycles < rn.cycles);
    }
}
