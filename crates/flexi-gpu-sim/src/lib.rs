//! A SIMT execution simulator standing in for CUDA hardware.
//!
//! FlexiWalker's kernels are *memory-bound* (paper §4.1): their relative
//! performance is governed by how many memory transactions and random-number
//! draws each sampling strategy issues, and by warp-level execution effects
//! (lockstep divergence, coalescing, warp intrinsics). This crate models
//! exactly those quantities:
//!
//! - [`DeviceSpec`] — an A6000-like device description (SMs, resident warps,
//!   clock, DRAM bandwidth/latency, per-op costs, VRAM capacity);
//! - [`WarpCtx`] — a 32-lane warp context: per-lane Philox RNG streams,
//!   `ballot` / `shfl` / reduction intrinsics, typed memory accessors that
//!   charge coalesced vs. random transaction costs, and divergence
//!   accounting for lockstep loops;
//! - [`Device::launch`] — runs a warp kernel over a grid, schedules warp
//!   costs onto SM slots, and reports aggregate [`CostStats`] plus a
//!   first-order simulated kernel time;
//! - [`MemPool`] — device-memory tracking for out-of-memory emulation
//!   (the paper reports OOM for baselines that sort or build tables).
//!
//! The simulator executes the *real* algorithm logic (sampled walks are
//! genuine samples); only time is modelled rather than measured, which is
//! what makes the reproduction deterministic and hardware-independent.

pub mod cost;
pub mod device;
pub mod spec;
pub mod warp;

pub use cost::CostStats;
pub use device::{Device, LaunchReport, MemPool, SimError};
pub use spec::DeviceSpec;
pub use warp::{WarpCtx, WARP_SIZE};
