//! Device descriptions.

/// Static description of a simulated GPU.
///
/// The default matches the paper's NVIDIA A6000 at the granularity the cost
/// model needs: enough SM-level parallelism for the scheduler, and per-op
/// cycle/byte costs for the memory-bound kernel time estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Resident warps per SM the scheduler can overlap (occupancy).
    pub warps_per_sm: usize,
    /// Warp instructions each SM can issue per cycle — compute throughput
    /// is `num_sms × issue_per_sm × clock`, far below the resident-warp
    /// count (residency hides latency; it does not add issue width).
    pub issue_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM transaction granularity in bytes (one coalesced sector).
    pub transaction_bytes: usize,
    /// Aggregate DRAM bandwidth in GB/s — caps whole-device throughput
    /// when many warps stream memory concurrently.
    pub dram_gbps: f64,
    /// Amortised cycles one DRAM transaction occupies an SM slot.
    ///
    /// With deep warp overlap most latency hides; this is the *throughput*
    /// cost, not the raw latency.
    pub cycles_per_transaction: u64,
    /// Extra cycle penalty for a non-coalesced (random) transaction.
    pub random_access_penalty: u64,
    /// Cycles per scalar ALU op.
    pub cycles_per_alu: u64,
    /// Cycles per 32-bit RNG draw (Philox round cost).
    pub cycles_per_rng: u64,
    /// Cycles per warp-intrinsic step (shuffle, ballot stage).
    pub cycles_per_shuffle: u64,
    /// Device memory capacity in bytes, for OOM emulation.
    pub vram_bytes: usize,
    /// Board power under load, in watts (energy model input).
    pub load_watts: f64,
    /// Idle power in watts.
    pub idle_watts: f64,
}

impl DeviceSpec {
    /// NVIDIA A6000-like configuration (84 SMs, 48 GB VRAM, 300 W).
    pub fn a6000() -> Self {
        Self {
            name: "SimA6000",
            num_sms: 84,
            warps_per_sm: 12,
            issue_per_sm: 4,
            clock_ghz: 1.41,
            transaction_bytes: 32,
            dram_gbps: 768.0,
            cycles_per_transaction: 8,
            random_access_penalty: 24,
            cycles_per_alu: 1,
            cycles_per_rng: 6,
            cycles_per_shuffle: 2,
            vram_bytes: 48 * (1 << 30),
            load_watts: 300.0,
            idle_watts: 20.0,
        }
    }

    /// NVIDIA A100-SXM-like configuration (108 SMs, 80 GB HBM2e, 400 W).
    pub fn a100() -> Self {
        Self {
            name: "SimA100",
            num_sms: 108,
            warps_per_sm: 16,
            issue_per_sm: 4,
            clock_ghz: 1.41,
            transaction_bytes: 32,
            dram_gbps: 2039.0,
            cycles_per_transaction: 8,
            random_access_penalty: 20,
            cycles_per_alu: 1,
            cycles_per_rng: 6,
            cycles_per_shuffle: 2,
            vram_bytes: 80 * (1 << 30),
            load_watts: 400.0,
            idle_watts: 50.0,
        }
    }

    /// NVIDIA RTX 3090-like configuration (82 SMs, 24 GB GDDR6X, 350 W).
    pub fn rtx3090() -> Self {
        Self {
            name: "SimRTX3090",
            num_sms: 82,
            warps_per_sm: 12,
            issue_per_sm: 4,
            clock_ghz: 1.70,
            transaction_bytes: 32,
            dram_gbps: 936.0,
            cycles_per_transaction: 8,
            random_access_penalty: 24,
            cycles_per_alu: 1,
            cycles_per_rng: 6,
            cycles_per_shuffle: 2,
            vram_bytes: 24 * (1 << 30),
            load_watts: 350.0,
            idle_watts: 25.0,
        }
    }

    /// A deliberately tiny device for tests: 2 SMs, 1 MiB of "VRAM".
    pub fn tiny() -> Self {
        Self {
            name: "SimTiny",
            num_sms: 2,
            warps_per_sm: 2,
            issue_per_sm: 1,
            clock_ghz: 1.0,
            transaction_bytes: 32,
            dram_gbps: 16.0,
            cycles_per_transaction: 8,
            random_access_penalty: 24,
            cycles_per_alu: 1,
            cycles_per_rng: 6,
            cycles_per_shuffle: 2,
            vram_bytes: 1 << 20,
            load_watts: 10.0,
            idle_watts: 1.0,
        }
    }

    /// Total concurrent warp slots the scheduler can fill.
    pub fn total_warp_slots(&self) -> usize {
        self.num_sms * self.warps_per_sm
    }

    /// Converts a cycle count to seconds at this device's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Time the DRAM system needs to serve all of `stats`' transactions.
    pub fn bandwidth_seconds(&self, stats: &crate::CostStats) -> f64 {
        let bytes =
            (stats.total_transactions() + stats.atomic_ops) as f64 * self.transaction_bytes as f64;
        bytes / (self.dram_gbps * 1e9)
    }

    /// Time the issue pipelines need for all of `stats`' compute work
    /// (ALU, RNG rounds, warp intrinsics).
    pub fn compute_seconds(&self, stats: &crate::CostStats) -> f64 {
        let ops = stats.alu_ops * self.cycles_per_alu
            + stats.rng_draws * self.cycles_per_rng
            + stats.shuffle_ops * self.cycles_per_shuffle;
        ops as f64 / (self.num_sms as f64 * self.issue_per_sm as f64 * self.clock_ghz * 1e9)
    }

    /// Whole-device execution time for aggregate activity `stats` assuming
    /// every warp slot is busy: the slowest of the latency-slot model, the
    /// DRAM bandwidth cap, and the compute-issue cap.
    pub fn saturated_seconds(&self, stats: &crate::CostStats) -> f64 {
        let slot_secs =
            self.cycles_to_seconds(stats.cycles(self) / self.total_warp_slots().max(1) as u64);
        slot_secs
            .max(self.bandwidth_seconds(stats))
            .max(self.compute_seconds(stats))
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::a6000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6000_has_sane_shape() {
        let s = DeviceSpec::a6000();
        assert_eq!(s.num_sms, 84);
        assert_eq!(s.total_warp_slots(), 84 * 12);
        assert!(s.vram_bytes > 40 * (1 << 30));
    }

    #[test]
    fn cycles_to_seconds_scales_with_clock() {
        let s = DeviceSpec::tiny();
        assert!((s.cycles_to_seconds(1_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_a6000() {
        assert_eq!(DeviceSpec::default(), DeviceSpec::a6000());
    }

    #[test]
    fn presets_are_ordered_by_capability() {
        // A100 outclasses A6000 outclasses the test device in bandwidth
        // and VRAM; memory-bound work must follow that ordering.
        let stats = crate::CostStats {
            coalesced_transactions: 1_000_000,
            ..Default::default()
        };
        let a100 = DeviceSpec::a100().saturated_seconds(&stats);
        let a6000 = DeviceSpec::a6000().saturated_seconds(&stats);
        let tiny = DeviceSpec::tiny().saturated_seconds(&stats);
        assert!(a100 < a6000, "{a100} vs {a6000}");
        assert!(a6000 < tiny, "{a6000} vs {tiny}");
        assert!(DeviceSpec::a100().vram_bytes > DeviceSpec::rtx3090().vram_bytes);
    }

    #[test]
    fn bandwidth_and_compute_caps_kick_in() {
        let spec = DeviceSpec::a6000();
        // Memory-only workload: bandwidth bound.
        let mem = crate::CostStats {
            coalesced_transactions: 1 << 24,
            ..Default::default()
        };
        assert!(spec.bandwidth_seconds(&mem) > spec.compute_seconds(&mem));
        // RNG-heavy workload: compute bound.
        let rng = crate::CostStats {
            rng_draws: 1 << 30,
            ..Default::default()
        };
        assert!(spec.compute_seconds(&rng) > spec.bandwidth_seconds(&rng));
        assert_eq!(
            spec.saturated_seconds(&rng),
            spec.compute_seconds(&rng)
                .max(spec.cycles_to_seconds(rng.cycles(&spec) / spec.total_warp_slots() as u64))
        );
    }
}
