//! Activity counters and the first-order kernel time model.

use crate::spec::DeviceSpec;

/// Per-warp (and, aggregated, per-kernel) activity counters.
///
/// Every [`crate::WarpCtx`] accessor increments these; the scheduler turns
/// them into cycles with [`CostStats::cycles`]. Counters are plain sums, so
/// aggregation is element-wise addition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostStats {
    /// Coalesced DRAM transactions (sequential warp-wide accesses).
    pub coalesced_transactions: u64,
    /// Non-coalesced DRAM transactions (random single-lane accesses).
    pub random_transactions: u64,
    /// Scalar ALU operations.
    pub alu_ops: u64,
    /// 32-bit random-number draws.
    pub rng_draws: u64,
    /// Warp-intrinsic steps (one shuffle stage each).
    pub shuffle_ops: u64,
    /// Atomic operations on global memory.
    pub atomic_ops: u64,
}

impl CostStats {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &CostStats) {
        self.coalesced_transactions += other.coalesced_transactions;
        self.random_transactions += other.random_transactions;
        self.alu_ops += other.alu_ops;
        self.rng_draws += other.rng_draws;
        self.shuffle_ops += other.shuffle_ops;
        self.atomic_ops += other.atomic_ops;
    }

    /// Total DRAM transactions of either kind.
    pub fn total_transactions(&self) -> u64 {
        self.coalesced_transactions + self.random_transactions
    }

    /// First-order cycle cost of this activity on `spec`.
    ///
    /// Atomics are priced as random transactions (they serialise on the
    /// memory system the same way).
    pub fn cycles(&self, spec: &DeviceSpec) -> u64 {
        let mem = self.coalesced_transactions * spec.cycles_per_transaction
            + self.random_transactions * (spec.cycles_per_transaction + spec.random_access_penalty)
            + self.atomic_ops * (spec.cycles_per_transaction + spec.random_access_penalty);
        let compute = self.alu_ops * spec.cycles_per_alu
            + self.rng_draws * spec.cycles_per_rng
            + self.shuffle_ops * spec.cycles_per_shuffle;
        // Memory-bound model with imperfect overlap: the larger component
        // dominates and a quarter of the smaller leaks through.
        let (hi, lo) = if mem >= compute {
            (mem, compute)
        } else {
            (compute, mem)
        };
        hi + lo / 4
    }
}

impl std::ops::Add for CostStats {
    type Output = CostStats;

    fn add(mut self, rhs: CostStats) -> CostStats {
        CostStats::add(&mut self, &rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_elementwise() {
        let a = CostStats {
            coalesced_transactions: 1,
            random_transactions: 2,
            alu_ops: 3,
            rng_draws: 4,
            shuffle_ops: 5,
            atomic_ops: 6,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.coalesced_transactions, 2);
        assert_eq!(c.atomic_ops, 12);
        assert_eq!(c.total_transactions(), 6);
    }

    #[test]
    fn cycles_weigh_random_access_heavier() {
        let spec = DeviceSpec::tiny();
        let coalesced = CostStats {
            coalesced_transactions: 100,
            ..Default::default()
        };
        let random = CostStats {
            random_transactions: 100,
            ..Default::default()
        };
        assert!(random.cycles(&spec) > coalesced.cycles(&spec));
    }

    #[test]
    fn cycles_overlap_memory_and_compute() {
        let spec = DeviceSpec::tiny();
        let mem_only = CostStats {
            coalesced_transactions: 1000,
            ..Default::default()
        };
        let mixed = CostStats {
            coalesced_transactions: 1000,
            alu_ops: 100,
            ..Default::default()
        };
        let delta = mixed.cycles(&spec) - mem_only.cycles(&spec);
        // Compute mostly hides under memory: only 1/4 of it leaks through.
        assert_eq!(delta, 100 / 4 * spec.cycles_per_alu);
    }

    #[test]
    fn zero_activity_is_zero_cycles() {
        assert_eq!(CostStats::default().cycles(&DeviceSpec::tiny()), 0);
    }
}
