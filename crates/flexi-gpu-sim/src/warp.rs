//! The 32-lane warp execution context.
//!
//! Kernels in this repository are written *warp-centric*: one function
//! invocation models the lockstep execution of 32 SIMT lanes. The context
//! provides per-lane RNG streams, CUDA-style warp intrinsics, and typed
//! memory accessors that feed the activity counters in [`CostStats`].

use crate::cost::CostStats;
use flexi_rng::{Philox4x32, RandomSource};

/// Number of lanes per warp (CUDA warp size).
pub const WARP_SIZE: usize = 32;

/// Number of shuffle stages a full-warp butterfly reduction takes (log2 32).
const REDUCTION_STAGES: u64 = 5;

/// Execution context of a single warp.
///
/// # Examples
///
/// ```
/// use flexi_gpu_sim::{WarpCtx, WARP_SIZE};
///
/// let mut ctx = WarpCtx::new(0, 42);
/// let mut keys = [0.0f32; WARP_SIZE];
/// for lane in 0..WARP_SIZE {
///     keys[lane] = ctx.draw_f32(lane);
/// }
/// let (argmax, max) = ctx.reduce_argmax_f32(&keys);
/// assert!(max >= keys[argmax] - f32::EPSILON);
/// assert_eq!(ctx.stats().rng_draws, 32);
/// ```
#[derive(Debug)]
pub struct WarpCtx {
    warp_id: usize,
    stats: CostStats,
    lanes: Vec<Philox4x32>,
    transaction_bytes: usize,
    /// When bound, all lanes draw from this stream instead of their own
    /// per-lane streams (see [`WarpCtx::bind_stream`]).
    bound_stream: Option<Philox4x32>,
}

impl WarpCtx {
    /// Creates the context for warp `warp_id` under experiment `seed`.
    ///
    /// Lane `l` owns Philox stream `warp_id * 32 + l`, so every lane in a
    /// grid draws from an independent, reproducible stream.
    pub fn new(warp_id: usize, seed: u64) -> Self {
        Self::with_transaction_bytes(warp_id, seed, 32)
    }

    /// As [`WarpCtx::new`] with an explicit DRAM sector size.
    pub fn with_transaction_bytes(warp_id: usize, seed: u64, transaction_bytes: usize) -> Self {
        assert!(transaction_bytes > 0, "sector size must be positive");
        let lanes = (0..WARP_SIZE)
            .map(|l| Philox4x32::new(seed, (warp_id * WARP_SIZE + l) as u64))
            .collect();
        Self {
            warp_id,
            stats: CostStats::default(),
            lanes,
            transaction_bytes,
            bound_stream: None,
        }
    }

    /// Redirects **all** lanes' draws to `stream` until
    /// [`WarpCtx::unbind_stream`] is called.
    ///
    /// This models a kernel whose randomness is keyed to the *work item*
    /// (walk query) rather than the executing lane: the FlexiWalker engine
    /// binds each query's private Philox stream around its sampling step,
    /// which makes walk paths independent of warp placement, host-thread
    /// count, and batch splits (the session-API determinism guarantee).
    /// Draw *costs* are charged exactly as before; only the stream the
    /// values come from changes.
    ///
    /// # Panics
    ///
    /// Panics if a stream is already bound (bindings must not nest).
    pub fn bind_stream(&mut self, stream: Philox4x32) {
        assert!(
            self.bound_stream.is_none(),
            "bind_stream while a stream is already bound"
        );
        self.bound_stream = Some(stream);
    }

    /// Removes the bound stream and returns it (with its advanced
    /// position), restoring per-lane draws.
    ///
    /// # Panics
    ///
    /// Panics if no stream is bound.
    pub fn unbind_stream(&mut self) -> Philox4x32 {
        self.bound_stream
            .take()
            .expect("unbind_stream without a bound stream")
    }

    #[inline]
    fn stream(&mut self, lane: usize) -> &mut Philox4x32 {
        match self.bound_stream.as_mut() {
            Some(s) => s,
            None => &mut self.lanes[lane],
        }
    }

    /// This warp's grid-global id.
    pub fn warp_id(&self) -> usize {
        self.warp_id
    }

    /// Activity accumulated so far.
    pub fn stats(&self) -> &CostStats {
        &self.stats
    }

    /// Consumes the context, returning its final activity counters.
    pub fn into_stats(self) -> CostStats {
        self.stats
    }

    // ---- Per-lane RNG -----------------------------------------------------

    /// Draws 32 random bits on `lane` (counted).
    pub fn draw_u32(&mut self, lane: usize) -> u32 {
        self.stats.rng_draws += 1;
        self.stream(lane).next_u32()
    }

    /// Draws a uniform `f32` in `(0, 1]` on `lane` (counted).
    pub fn draw_f32(&mut self, lane: usize) -> f32 {
        self.stats.rng_draws += 1;
        self.stream(lane).uniform_f32()
    }

    /// Draws a uniform `f64` in `(0, 1]` on `lane` (counted as two draws).
    pub fn draw_f64(&mut self, lane: usize) -> f64 {
        self.stats.rng_draws += 2;
        self.stream(lane).uniform_f64()
    }

    /// Draws a uniform index in `[0, bound)` on `lane` (counted).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn draw_index(&mut self, lane: usize, bound: usize) -> usize {
        assert!(bound > 0, "draw_index bound must be positive");
        self.stats.rng_draws += 1;
        let x = self.stream(lane).next_u32();
        ((u64::from(x) * bound as u64) >> 32) as usize
    }

    /// Advances `lane`'s stream by `n` draws **without** RNG cost.
    ///
    /// This is the primitive behind the eRVS jump optimisation: skipping is
    /// an O(1) counter addition on Philox, so it is deliberately free in the
    /// cost model (charge an [`WarpCtx::alu`] op at the call site for the
    /// threshold arithmetic instead).
    pub fn skip_rng(&mut self, lane: usize, n: u64) {
        self.stream(lane).skip(n);
    }

    // ---- Memory accounting ------------------------------------------------

    /// Charges a warp-wide sequential read of `bytes` contiguous bytes.
    pub fn read_coalesced(&mut self, bytes: usize) {
        self.stats.coalesced_transactions += Self::transactions(bytes, self.transaction_bytes);
    }

    /// Charges a single-lane random-address read of `bytes` bytes.
    pub fn read_random(&mut self, bytes: usize) {
        self.stats.random_transactions += Self::transactions(bytes, self.transaction_bytes).max(1);
    }

    /// Charges a warp-wide sequential write of `bytes` bytes.
    pub fn write_coalesced(&mut self, bytes: usize) {
        self.stats.coalesced_transactions += Self::transactions(bytes, self.transaction_bytes);
    }

    /// Charges `n` scalar ALU operations.
    pub fn alu(&mut self, n: u64) {
        self.stats.alu_ops += n;
    }

    /// Charges one global atomic operation.
    pub fn atomic(&mut self) {
        self.stats.atomic_ops += 1;
    }

    fn transactions(bytes: usize, sector: usize) -> u64 {
        (bytes.div_ceil(sector)) as u64
    }

    // ---- Warp intrinsics ----------------------------------------------------

    /// `__ballot_sync`: packs one predicate bit per lane.
    pub fn ballot(&mut self, preds: &[bool; WARP_SIZE]) -> u32 {
        self.stats.shuffle_ops += 1;
        let mut mask = 0u32;
        for (lane, &p) in preds.iter().enumerate() {
            if p {
                mask |= 1 << lane;
            }
        }
        mask
    }

    /// `__shfl_sync`: every lane reads `vals[src_lane]`.
    pub fn shfl<T: Copy>(&mut self, vals: &[T; WARP_SIZE], src_lane: usize) -> T {
        self.stats.shuffle_ops += 1;
        vals[src_lane]
    }

    /// Butterfly max-reduction over all lanes.
    pub fn reduce_max_f32(&mut self, vals: &[f32; WARP_SIZE]) -> f32 {
        self.stats.shuffle_ops += REDUCTION_STAGES;
        vals.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Butterfly sum-reduction over all lanes.
    pub fn reduce_sum_f32(&mut self, vals: &[f32; WARP_SIZE]) -> f32 {
        self.stats.shuffle_ops += REDUCTION_STAGES;
        vals.iter().sum()
    }

    /// Butterfly argmax-reduction; ties resolve to the lowest lane.
    pub fn reduce_argmax_f32(&mut self, vals: &[f32; WARP_SIZE]) -> (usize, f32) {
        self.stats.shuffle_ops += REDUCTION_STAGES;
        let mut best = (0usize, f32::NEG_INFINITY);
        for (lane, &v) in vals.iter().enumerate() {
            if v > best.1 {
                best = (lane, v);
            }
        }
        best
    }

    /// Warp-scope inclusive prefix sum (Hillis–Steele, 5 stages).
    pub fn prefix_sum_f32(&mut self, vals: &[f32; WARP_SIZE]) -> [f32; WARP_SIZE] {
        self.stats.shuffle_ops += REDUCTION_STAGES;
        let mut out = *vals;
        for i in 1..WARP_SIZE {
            out[i] += out[i - 1];
        }
        out
    }

    /// Charges the lockstep cost of a divergent loop: all lanes pay for the
    /// longest-running lane. Returns that maximum for the caller's logic.
    pub fn lockstep_iters(&mut self, per_lane_iters: &[u64; WARP_SIZE], alu_per_iter: u64) -> u64 {
        let max = per_lane_iters.iter().copied().max().unwrap_or(0);
        self.stats.alu_ops += max * alu_per_iter;
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_streams_are_independent_and_reproducible() {
        let mut a = WarpCtx::new(3, 9);
        let mut b = WarpCtx::new(3, 9);
        assert_eq!(a.draw_u32(0), b.draw_u32(0));
        assert_ne!(a.draw_u32(1), a.draw_u32(2));
        let mut c = WarpCtx::new(4, 9);
        assert_ne!(a.draw_u32(0), c.draw_u32(0));
    }

    #[test]
    fn bound_stream_overrides_every_lane_and_returns_advanced() {
        let mut ctx = WarpCtx::new(0, 1);
        let stream = Philox4x32::new(77, 5);
        let mut reference = stream.clone();
        ctx.bind_stream(stream);
        // Draws on different lanes all pull from the bound stream, in order.
        let a = ctx.draw_u32(0);
        let b = ctx.draw_u32(13);
        let c = ctx.draw_u32(31);
        assert_eq!(a, reference.next_u32());
        assert_eq!(b, reference.next_u32());
        assert_eq!(c, reference.next_u32());
        let back = ctx.unbind_stream();
        assert_eq!(back.position(), reference.position());
        // Costs were charged normally.
        assert_eq!(ctx.stats().rng_draws, 3);
        // After unbinding, lane streams resume untouched.
        let mut fresh = WarpCtx::new(0, 1);
        assert_eq!(ctx.draw_u32(4), fresh.draw_u32(4));
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn nested_stream_bindings_are_rejected() {
        let mut ctx = WarpCtx::new(0, 1);
        ctx.bind_stream(Philox4x32::new(1, 1));
        ctx.bind_stream(Philox4x32::new(2, 2));
    }

    #[test]
    fn draw_counts_accumulate() {
        let mut ctx = WarpCtx::new(0, 1);
        ctx.draw_u32(0);
        ctx.draw_f32(1);
        ctx.draw_f64(2);
        ctx.draw_index(3, 10);
        assert_eq!(ctx.stats().rng_draws, 5);
    }

    #[test]
    fn skip_rng_is_free_and_advances_stream() {
        let mut a = WarpCtx::new(0, 1);
        let mut b = WarpCtx::new(0, 1);
        for _ in 0..5 {
            a.draw_u32(7);
        }
        b.skip_rng(7, 5);
        assert_eq!(b.stats().rng_draws, 0);
        assert_eq!(a.draw_u32(7), b.draw_u32(7));
    }

    #[test]
    fn coalesced_reads_batch_into_sectors() {
        let mut ctx = WarpCtx::new(0, 1);
        ctx.read_coalesced(32 * 4); // 128 bytes = 4 sectors of 32.
        assert_eq!(ctx.stats().coalesced_transactions, 4);
        ctx.read_coalesced(1);
        assert_eq!(ctx.stats().coalesced_transactions, 5);
    }

    #[test]
    fn random_reads_cost_at_least_one_transaction() {
        let mut ctx = WarpCtx::new(0, 1);
        ctx.read_random(4);
        ctx.read_random(4);
        assert_eq!(ctx.stats().random_transactions, 2);
    }

    #[test]
    fn ballot_packs_bits() {
        let mut ctx = WarpCtx::new(0, 1);
        let mut preds = [false; WARP_SIZE];
        preds[0] = true;
        preds[5] = true;
        preds[31] = true;
        assert_eq!(ctx.ballot(&preds), 1 | (1 << 5) | (1 << 31));
    }

    #[test]
    fn reductions_match_scalar_equivalents() {
        let mut ctx = WarpCtx::new(0, 1);
        let mut vals = [0.0f32; WARP_SIZE];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = ((i * 7) % 13) as f32;
        }
        assert_eq!(ctx.reduce_max_f32(&vals), 12.0);
        assert_eq!(ctx.reduce_sum_f32(&vals), vals.iter().sum());
        let (lane, max) = ctx.reduce_argmax_f32(&vals);
        assert_eq!(max, 12.0);
        assert_eq!(vals[lane], 12.0);
    }

    #[test]
    fn argmax_ties_resolve_to_lowest_lane() {
        let mut ctx = WarpCtx::new(0, 1);
        let vals = [1.0f32; WARP_SIZE];
        assert_eq!(ctx.reduce_argmax_f32(&vals).0, 0);
    }

    #[test]
    fn prefix_sum_is_inclusive() {
        let mut ctx = WarpCtx::new(0, 1);
        let vals = [1.0f32; WARP_SIZE];
        let ps = ctx.prefix_sum_f32(&vals);
        assert_eq!(ps[0], 1.0);
        assert_eq!(ps[31], 32.0);
    }

    #[test]
    fn shfl_broadcasts_one_lane() {
        let mut ctx = WarpCtx::new(0, 1);
        let mut vals = [0u32; WARP_SIZE];
        vals[9] = 77;
        assert_eq!(ctx.shfl(&vals, 9), 77);
    }

    #[test]
    fn lockstep_charges_max_lane() {
        let mut ctx = WarpCtx::new(0, 1);
        let mut iters = [1u64; WARP_SIZE];
        iters[4] = 50;
        let max = ctx.lockstep_iters(&iters, 3);
        assert_eq!(max, 50);
        assert_eq!(ctx.stats().alu_ops, 150);
    }

    #[test]
    fn intrinsics_charge_shuffles() {
        let mut ctx = WarpCtx::new(0, 1);
        let vals = [0.0f32; WARP_SIZE];
        ctx.reduce_max_f32(&vals);
        ctx.ballot(&[false; WARP_SIZE]);
        assert_eq!(ctx.stats().shuffle_ops, 5 + 1);
    }
}
