//! # FlexiWalker
//!
//! An extensible framework for efficient **dynamic random walks** with
//! runtime adaptation — a Rust reproduction of the EuroSys '26 paper
//! *"FlexiWalker: Extensible GPU Framework for Efficient Dynamic Random
//! Walks with Runtime Adaptation"* (Park et al.).
//!
//! Dynamic random walks (Node2Vec, MetaPath, second-order PageRank)
//! recompute transition probabilities from walker history at every step,
//! which defeats the precompute-and-cache strategy of static-walk systems.
//! FlexiWalker answers with three tightly integrated components:
//!
//! - **Flexi-Kernel** — two optimised sampling kernels: *eRVS* (reservoir
//!   sampling via Efraimidis–Spirakis exponential keys plus the
//!   exponential-jump trick, eliminating prefix sums and most RNG draws)
//!   and *eRJS* (rejection sampling against an analytically derived upper
//!   bound, eliminating per-step max reductions);
//! - **Flexi-Runtime** — a profiled first-order cost model that picks the
//!   cheapest strategy *per node, per step* — over a pluggable
//!   [`SamplerRegistry`](prelude::SamplerRegistry), so third-party
//!   strategies compete on equal footing with the built-ins;
//! - **Flexi-Compiler** — static analysis of the user's `get_weight`
//!   source that derives the bound estimators automatically, with a sound
//!   reservoir-only fallback for unanalyzable code.
//!
//! This crate is the workspace façade: the [`FlexiWalker`](prelude::FlexiWalker)
//! builder produces a [`Session`](prelude::Session) that caches
//! preprocessing, profiling and compiled estimators across submissions and
//! batches walk jobs deterministically. See the `README.md` for a tour and
//! `DESIGN.md` for the architecture and the hardware-substitution
//! rationale (the GPU is a deterministic SIMT simulator).
//!
//! ## Quickstart
//!
//! ```
//! use flexiwalker::prelude::*;
//!
//! // A small scale-free graph with uniform edge property weights.
//! let graph = gen::rmat(10, 8192, gen::RmatParams::SOCIAL, 42);
//! let graph = WeightModel::UniformReal.apply(graph, 42);
//!
//! // Weighted Node2Vec with the paper's hyperparameters (a=2, b=0.5).
//! let workload = Node2Vec::paper(true);
//!
//! // A session on a simulated A6000: preprocessing, profiling and
//! // compiled estimators are cached across submissions.
//! let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
//!
//! // Run 128 walks of 20 steps.
//! let queries: Vec<NodeId> = (0..128).collect();
//! let report = session
//!     .run(WalkRequest::new(&graph, &workload, &queries)
//!         .steps(20)
//!         .record_paths(true))
//!     .unwrap();
//! assert_eq!(report.paths.as_ref().unwrap().len(), 128);
//! println!(
//!     "simulated {:.3} ms; per-sampler steps: {}",
//!     report.sim_seconds * 1e3,
//!     report.sampler_steps
//! );
//!
//! // A second submission over the same graph+workload reuses the cached
//! // preparation: its Table-3 overheads are zero.
//! let report2 = session
//!     .run(WalkRequest::new(&graph, &workload, &queries).steps(20))
//!     .unwrap();
//! assert_eq!(report2.profile_seconds, 0.0);
//! assert_eq!(report2.preprocess_seconds, 0.0);
//! ```

pub mod session;

pub use flexi_baselines as baselines;
pub use flexi_compiler as compiler;
pub use flexi_core as core;
pub use flexi_gpu_sim as gpu_sim;
pub use flexi_graph as graph;
pub use flexi_rng as rng;
pub use flexi_sampling as sampling;

/// Commonly used items for a one-line import.
pub mod prelude {
    pub use crate::session::{FlexiWalker, Session, SessionBuilder, Ticket};
    pub use flexi_core::{
        DynamicWalk, EngineError, FlexiWalkerEngine, MetaPath, Node2Vec, RunReport, SamplerTally,
        SecondOrderPr, SelectionStrategy, UniformWalk, WalkConfig, WalkEngine, WalkRequest,
        WalkState,
    };
    pub use flexi_gpu_sim::DeviceSpec;
    pub use flexi_graph::{gen, proxy, Csr, CsrBuilder, NodeId, WeightModel};
    pub use flexi_rng::{Philox4x32, RandomSource};
    pub use flexi_sampling::{
        ids as sampler_ids, Granularity, Sampler, SamplerId, SamplerRegistry,
    };
}
