//! # FlexiWalker
//!
//! An extensible framework for efficient **dynamic random walks** with
//! runtime adaptation — a Rust reproduction of the EuroSys '26 paper
//! *"FlexiWalker: Extensible GPU Framework for Efficient Dynamic Random
//! Walks with Runtime Adaptation"* (Park et al.).
//!
//! Dynamic random walks (Node2Vec, MetaPath, second-order PageRank)
//! recompute transition probabilities from walker history at every step,
//! which defeats the precompute-and-cache strategy of static-walk systems.
//! FlexiWalker answers with three tightly integrated components:
//!
//! - **Flexi-Kernel** — two optimised sampling kernels: *eRVS* (reservoir
//!   sampling via Efraimidis–Spirakis exponential keys plus the
//!   exponential-jump trick, eliminating prefix sums and most RNG draws)
//!   and *eRJS* (rejection sampling against an analytically derived upper
//!   bound, eliminating per-step max reductions);
//! - **Flexi-Runtime** — a profiled first-order cost model that picks the
//!   cheapest strategy *per node, per step* — over a pluggable
//!   [`SamplerRegistry`](prelude::SamplerRegistry), so third-party
//!   strategies compete on equal footing with the built-ins;
//! - **Flexi-Compiler** — static analysis of the user's `get_weight`
//!   source that derives the bound estimators automatically, with a sound
//!   reservoir-only fallback for unanalyzable code.
//!
//! This crate is the workspace façade: the [`FlexiWalker`](prelude::FlexiWalker)
//! builder produces a [`Session`](prelude::Session) that *owns* its graphs
//! behind epoch-versioned [`GraphHandle`](prelude::GraphHandle)s, serves
//! any walker registered in its [`WalkerRegistry`](prelude::WalkerRegistry)
//! — the built-ins (`"node2vec"`, `"metapath"`, `"sopr"`, `"uniform"`,
//! and the temporal trio `"temporal_uniform"` / `"temporal_exp"` /
//! `"temporal_linear"`),
//! user DSL sources, or native [`DynamicWalk`](prelude::DynamicWalk)
//! implementations, all lowered through one compiler pipeline — over live
//! topology/weight updates, and caches lowering, preprocessing and
//! profiling across submissions — keyed by graph version, so an update
//! invalidates exactly what it must. See the `README.md` for a tour and
//! `DESIGN.md` for the architecture and the hardware-substitution
//! rationale (the GPU is a deterministic SIMT simulator).
//!
//! ## Quickstart
//!
//! The handle lifecycle is `load_graph` → `load_walker` → `submit` →
//! `apply_updates` → `drain`:
//!
//! ```
//! use flexiwalker::prelude::*;
//!
//! // A small scale-free graph with uniform edge property weights.
//! let csr = gen::rmat(10, 8192, gen::RmatParams::SOCIAL, 42);
//! let csr = WeightModel::UniformReal.apply(csr, 42);
//!
//! // A session on a simulated A6000 owns the graph under a versioned
//! // handle; the content digest is computed once, here.
//! let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
//! let graph = session.load_graph(csr);
//! assert_eq!(graph.epoch(), 0);
//!
//! // Weighted Node2Vec with the paper's hyperparameters (a=2, b=0.5) —
//! // a built-in walker-registry entry. Your own walkers register the
//! // same way (`SessionBuilder::register_walker` with a DSL source or a
//! // native impl) and serve through the identical pipeline.
//! let workload = session.load_walker("node2vec").unwrap();
//!
//! // Run 128 walks of 20 steps.
//! let queries: Vec<NodeId> = (0..128).collect();
//! let report = session
//!     .run(WalkRequest::new(&graph, &workload, &queries)
//!         .steps(20)
//!         .record_paths(true))
//!     .unwrap();
//! assert_eq!(report.paths.as_ref().unwrap().len(), 128);
//! assert_eq!(report.graph_version, graph.version());
//!
//! // A second submission over the same graph+workload reuses the cached
//! // preparation: its Table-3 overheads are zero.
//! let report2 = session
//!     .run(WalkRequest::new(&graph, &workload, &queries).steps(20))
//!     .unwrap();
//! assert_eq!(report2.profile_seconds, 0.0);
//! assert_eq!(report2.preprocess_seconds, 0.0);
//!
//! // Live update: insert an edge. The epoch advances and only the dirty
//! // node's aggregates are recomputed — walks keep serving.
//! let outcome = session
//!     .apply_updates(&graph, &[GraphUpdate::AddEdge {
//!         src: 0, dst: 9, weight: 5.0, label: 0,
//!     }])
//!     .unwrap();
//! assert_eq!(outcome.version.epoch, 1);
//! assert_eq!(outcome.dirty_nodes, vec![0]);
//! let report3 = session
//!     .run(WalkRequest::new(&graph, &workload, &queries).steps(20))
//!     .unwrap();
//! assert_eq!(report3.graph_version.epoch, 1);
//! ```

pub mod executor;
pub mod server;
pub mod session;

pub use flexi_baselines as baselines;
pub use flexi_compiler as compiler;
pub use flexi_core as core;
pub use flexi_gpu_sim as gpu_sim;
pub use flexi_graph as graph;
pub use flexi_rng as rng;
pub use flexi_sampling as sampling;

/// Commonly used items for a one-line import.
pub mod prelude {
    pub use crate::server::{
        ServeError, ServerStats, UpdateTicket, WalkServer, WalkServerBuilder, WalkTicket,
    };
    pub use crate::session::{FlexiWalker, Session, SessionBuilder, SessionStats, Ticket};
    pub use flexi_core::{
        AdmissionPolicy, AdmissionStats, BlockStats, ChurnProfile, CompiledWalker, DiskSpec,
        DynamicWalk, EngineError, FlexiWalkerEngine, IntoQueries, IntoWalker, LatencyHistogram,
        LinkSpec, MetaPath, Node2Vec, PricedCandidate, RunReport, SamplerSelection, SamplerTally,
        SecondOrderPr, SelectionStrategy, ShardStats, StageTiming, TemporalExp, TemporalLinear,
        TemporalUniform, Topology, UniformWalk, WalkConfig, WalkEngine, WalkRequest, WalkState,
        WalkerDef, WalkerHandle, WalkerRegistry, WalkerSource,
    };
    pub use flexi_gpu_sim::DeviceSpec;
    pub use flexi_graph::{
        block_of, gen, proxy, shard_of, BlockRuntime, CacheCounters, Csr, CsrBuilder, GraphError,
        GraphHandle, GraphSnapshot, GraphUpdate, GraphVersion, NodeId, PartitionPlan, PlanFetch,
        ResidentCache, TimeMask, TimeWindow, UpdateOutcome, WeightModel,
    };
    pub use flexi_rng::{Philox4x32, RandomSource};
    pub use flexi_sampling::{
        ids as sampler_ids, AliasSampler, Granularity, ItsSampler, NodeState, Sampler, SamplerId,
        SamplerRegistry, StateTable, TcdfSampler,
    };
}
