//! The parallel drain executor: fans a session's pending walk requests
//! across a host worker pool with a deterministic, submission-ordered
//! merge.
//!
//! [`Session::drain`](crate::session::Session::drain) runs in two phases:
//!
//! 1. **Prepare** (sequential, on the calling thread): each pending
//!    request resolves its graph handle, pins a [`GraphSnapshot`] — one
//!    per graph per drain, shared by every request in the same batch
//!    group — and pulls its compiled estimators, aggregates and profile
//!    out of the session caches (building them on a miss). This is the
//!    only phase that mutates the session, so the caches need no locks.
//! 2. **Execute** (parallel): the prepared jobs are grouped by
//!    `(graph id, epoch, device)` and fanned across the
//!    [`WorkerPool`]. Each job is a pure call into
//!    [`FlexiWalkerEngine::run_on`] over its pinned snapshot; nothing
//!    here touches shared mutable state.
//!
//! Reports merge back **in submission order**, and per-query Philox
//! streams make every walk's randomness independent of warp placement and
//! host-thread count — together that is what makes `drain()` output
//! bit-identical at any worker count, which `tests/integration_executor.rs`
//! pins across `workers ∈ {1, 2, 4, 8}` and across epoch splits.

use crate::session::Ticket;
use flexi_core::{
    EngineError, FlexiWalkerEngine, PreparedState, RunReport, WalkRequest, WorkerPool,
};
use flexi_graph::GraphSnapshot;
use std::collections::HashMap;

/// Batch grouping key: requests over the same graph version on the same
/// device form one group and share a pinned snapshot.
pub type GroupKey = (u64, u64, &'static str);

/// One pending request after the session's sequential preparation pass:
/// everything [`FlexiWalkerEngine::run_on`] needs, with no remaining
/// dependency on the session's mutable caches.
#[derive(Debug)]
pub struct PreparedJob {
    /// The submission ticket the report merges back under.
    pub ticket: Ticket,
    /// The owned walk request (walker handle resolved when preparation
    /// succeeded).
    pub req: WalkRequest,
    /// The graph version pinned for this job's launch.
    pub snap: GraphSnapshot,
    /// Cached (or freshly built) estimators, aggregates and profile — or
    /// the typed preparation failure (unknown walker name, walker compile
    /// error) the job reports instead of running.
    pub prepared: Result<PreparedState, EngineError>,
    /// Whether the aggregates came from the session cache (Table-3
    /// preprocess overhead reports as zero).
    pub preprocess_hit: bool,
    /// Whether the profile came from the session cache.
    pub profile_hit: bool,
}

impl PreparedJob {
    /// The job's batch group.
    pub fn group(&self, engine: &FlexiWalkerEngine) -> GroupKey {
        (
            self.snap.version.graph_id,
            self.snap.version.epoch,
            engine.spec().name,
        )
    }
}

/// Outcome of one drain through the executor.
#[derive(Debug)]
pub struct DrainRun {
    /// Per-request outcomes, in submission order.
    pub results: Vec<(Ticket, Result<RunReport, EngineError>)>,
    /// Requests executed by each worker slot (scheduling-dependent; the
    /// merged results are not).
    pub per_worker: Vec<u64>,
    /// Distinct `(graph id, epoch, device)` batch groups in this drain.
    pub groups: usize,
}

/// Executes prepared jobs across `workers` host threads and merges the
/// reports in submission order.
///
/// Jobs are scheduled group-by-group (requests over the same graph
/// version run adjacently, for cache locality) but each job lands back at
/// its own submission index, so the output is independent of both the
/// grouping and the worker count. `workers == 1` runs inline on the
/// calling thread — exactly the sequential path.
pub fn execute(engine: &FlexiWalkerEngine, jobs: Vec<PreparedJob>, workers: usize) -> DrainRun {
    // Group by first appearance: stable within a group, groups in
    // submission order of their first member.
    let mut first_seen: HashMap<GroupKey, usize> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        first_seen.entry(job.group(engine)).or_insert(i);
    }
    let groups = first_seen.len();
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (first_seen[&jobs[i].group(engine)], i));

    let pool = WorkerPool::new(workers);
    // Chunk of 1: drain jobs are whole walk batches, heavyweight enough
    // that per-job popping balances better than it contends.
    let run = pool.run_indexed(&order, 1, |_, &i| run_job(engine, &jobs[i]));

    // Scatter back from execution order to submission order.
    let mut slots: Vec<Option<Result<RunReport, EngineError>>> =
        (0..jobs.len()).map(|_| None).collect();
    for (pos, outcome) in run.results.into_iter().enumerate() {
        slots[order[pos]] = Some(outcome);
    }
    let results = jobs
        .iter()
        .zip(slots)
        .map(|(job, slot)| (job.ticket, slot.expect("every job executed")))
        .collect();
    DrainRun {
        results,
        per_worker: run.per_worker,
        groups,
    }
}

/// Runs one prepared job — a pure function of the job and the engine.
fn run_job(engine: &FlexiWalkerEngine, job: &PreparedJob) -> Result<RunReport, EngineError> {
    let prepared = job.prepared.as_ref().map_err(Clone::clone)?;
    let mut report = engine.run_on(&job.snap, &job.req, prepared)?;
    // Cached preparation costs nothing at run time; only the first
    // request over a (graph version, workload) pair reports Table-3
    // overheads.
    if job.preprocess_hit {
        report.preprocess_seconds = 0.0;
    }
    if job.profile_hit {
        report.profile_seconds = 0.0;
    }
    Ok(report)
}
