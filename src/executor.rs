//! The parallel drain executor: fans a session's pending walk requests —
//! and, under a multi-device [`Topology`], their per-shard sub-launches —
//! across a host worker pool with a deterministic, submission-ordered
//! merge.
//!
//! [`Session::drain`](crate::session::Session::drain) runs in two phases:
//!
//! 1. **Prepare** (sequential, on the calling thread): each pending
//!    request resolves its graph handle, pins a [`GraphSnapshot`] — one
//!    per graph per drain, shared by every request in the same batch
//!    group — and pulls its compiled estimators, aggregates, profile and
//!    (for partitioned topologies) the epoch's cached
//!    [`PartitionPlan`] out of the session caches (building them on a
//!    miss). This is the only phase that mutates the session, so the
//!    caches need no locks.
//! 2. **Execute** (parallel): the prepared jobs are grouped by
//!    `(graph id, epoch, device)`, expanded into one launch per shard of
//!    the session [`Topology`], and fanned across the [`WorkerPool`].
//!    Each launch is a pure call into [`FlexiWalkerEngine::run_on`] (or
//!    [`run_on_resident`](FlexiWalkerEngine::run_on_resident), for
//!    partitioned shards whose devices hold only their partition) over
//!    its pinned snapshot; nothing here touches shared mutable state.
//!
//! ## Shard expansion
//!
//! Under [`Topology::MultiDevice`] and [`Topology::Partitioned`] a job's
//! query set splits into `devices` *contiguous* chunks, each launched as
//! its own sub-request whose [`WalkRequest::query_offset`] is advanced by
//! the chunk start. Per-query Philox streams key randomness off the
//! *global* query index, so the concatenated shard outputs are
//! bit-identical to the single-device run — sharding changes where work
//! executes and what the simulated clock reads, never what the walks do.
//! (Contiguous chunking is the right split for determinism; walkers under
//! a partitioned topology migrate to each step's owner regardless of
//! which chunk launched them, and the migration census below accounts
//! steps to the owner of the walker's current node.)
//!
//! ## Out-of-core replay
//!
//! Under [`Topology::OutOfCore`] a job launches once (one device) with
//! paths force-recorded and the OOM bar lowered to the resident-cache
//! budget (plus one oversized block) — the graph itself never has to fit.
//! The merge then replays the recorded paths through the epoch's cached
//! [`BlockRuntime`] via [`flexi_core::block_schedule`]: walkers pool per
//! block, the most-pending block activates next, every step is verified
//! against spilled block data, and the simulated NVMe time of the cache
//! misses lands on the job's clock. The replay runs on the merging
//! thread, sequentially in submission order, so cache state — and with
//! it every counter — is deterministic at any worker count.
//!
//! Per-job shard reports merge shard-major: steps, device activity and
//! sampler tallies sum; the ensemble clock is the slowest shard plus — for
//! partitioned topologies — the serialising migration traffic on the
//! [`LinkSpec`](flexi_core::LinkSpec); [`RunReport::shards`] carries the
//! per-shard step census, migration count and link seconds. Reports then
//! merge back **in submission order** as before, so `drain()` output is
//! bit-identical at any worker count *and* walk-identical across
//! topologies — which `tests/integration_topology.rs` pins across
//! `topology ∈ {single, multi(2), partitioned(2, 4)} × workers ∈ {1, 4}`
//! and epoch splits.

use crate::session::Ticket;
use flexi_core::{
    block_schedule, migration_census, BlockRuntime, DiskSpec, EngineError, FlexiWalkerEngine,
    PartitionPlan, PreparedState, RunReport, ShardStats, Topology, WalkRequest, WorkerPool,
};
use flexi_graph::GraphSnapshot;
use std::collections::HashMap;
use std::sync::Arc;

/// Batch grouping key: requests over the same graph version on the same
/// device form one group and share a pinned snapshot.
pub type GroupKey = (u64, u64, &'static str);

/// One pending request after the session's sequential preparation pass:
/// everything [`FlexiWalkerEngine::run_on`] needs, with no remaining
/// dependency on the session's mutable caches.
#[derive(Debug)]
pub struct PreparedJob {
    /// The submission ticket the report merges back under.
    pub ticket: Ticket,
    /// The owned walk request (walker handle resolved when preparation
    /// succeeded).
    pub req: WalkRequest,
    /// The graph version pinned for this job's launch.
    pub snap: GraphSnapshot,
    /// Cached (or freshly built) estimators, aggregates and profile — or
    /// the typed preparation failure (unknown walker name, walker compile
    /// error) the job reports instead of running.
    pub prepared: Result<PreparedState, EngineError>,
    /// The epoch's partition plan, attached by the prepare pass when the
    /// session topology partitions the graph (`None` otherwise).
    pub plan: Option<Arc<PartitionPlan>>,
    /// The epoch's block runtime (spill + resident cache), attached by
    /// the prepare pass under [`Topology::OutOfCore`] (`None` otherwise).
    pub blocks: Option<Arc<BlockRuntime>>,
    /// Whether the aggregates came from the session cache (Table-3
    /// preprocess overhead reports as zero).
    pub preprocess_hit: bool,
    /// Whether the profile came from the session cache.
    pub profile_hit: bool,
}

impl PreparedJob {
    /// The job's batch group.
    pub fn group(&self, engine: &FlexiWalkerEngine) -> GroupKey {
        (
            self.snap.version.graph_id,
            self.snap.version.epoch,
            engine.spec().name,
        )
    }
}

/// Outcome of one drain through the executor.
#[derive(Debug)]
pub struct DrainRun {
    /// Per-request outcomes, in submission order.
    pub results: Vec<(Ticket, Result<RunReport, EngineError>)>,
    /// Shard launches executed by each worker slot (scheduling-dependent;
    /// the merged results are not). Under `Topology::Single` a launch is
    /// exactly one request.
    pub per_worker: Vec<u64>,
    /// Distinct `(graph id, epoch, device)` batch groups in this drain.
    pub groups: usize,
    /// Shard sub-launches this drain fanned out (equals the request count
    /// under `Topology::Single`).
    pub shard_launches: u64,
    /// Walker migrations across the simulated interconnect, summed over
    /// the drain's partitioned jobs.
    pub migrations: u64,
    /// Simulated link seconds those migrations cost, summed likewise.
    pub link_seconds: f64,
    /// Blocks read from the spill file, summed over the drain's
    /// out-of-core jobs.
    pub block_loads: u64,
    /// Block activations served from the resident cache, summed likewise.
    pub block_hits: u64,
    /// Blocks evicted from the resident cache, summed likewise.
    pub block_evictions: u64,
    /// Simulated disk seconds the block loads cost, summed likewise.
    pub io_seconds: f64,
}

/// One schedulable launch: a job index, the shard it stands for, and the
/// chunked sub-request (`None` = the job's own request, the
/// single-topology fast path that avoids a clone).
struct ShardTask {
    job: usize,
    shard: usize,
    req: Option<WalkRequest>,
    /// Device-resident bytes this launch must fit (partitioned topologies
    /// check the busiest partition; duplicated/single launches check the
    /// whole graph inside `run_on`).
    resident: Option<usize>,
}

/// Executes prepared jobs across `workers` host threads and merges the
/// reports in submission order.
///
/// Jobs are scheduled group-by-group (requests over the same graph
/// version run adjacently, for cache locality), expanded into one launch
/// per topology shard, and each job lands back at its own submission
/// index, so the output is independent of the grouping, the worker count
/// and the shard interleaving. `workers == 1` runs inline on the calling
/// thread — exactly the sequential path.
pub fn execute(
    engine: &FlexiWalkerEngine,
    jobs: Vec<PreparedJob>,
    workers: usize,
    topology: Topology,
) -> DrainRun {
    let topology = topology.normalized();
    // Group by first appearance: stable within a group, groups in
    // submission order of their first member.
    let mut first_seen: HashMap<GroupKey, usize> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        first_seen.entry(job.group(engine)).or_insert(i);
    }
    let groups = first_seen.len();
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (first_seen[&jobs[i].group(engine)], i));

    // Expand each job into its shard launches, in group order.
    let mut tasks: Vec<ShardTask> = Vec::new();
    for &i in &order {
        expand_job(&jobs[i], i, topology, &mut tasks);
    }

    let pool = WorkerPool::new(workers);
    // Chunk of 1: shard launches are whole walk batches, heavyweight
    // enough that per-task popping balances better than it contends.
    let run = pool.run_indexed(&tasks, 1, |_, task| {
        run_task(engine, &jobs[task.job], task, topology)
    });

    // Collect each job's shard reports (tasks are contiguous per job and
    // in shard order, so this is a stable gather).
    let mut shard_reports: Vec<Vec<(usize, Result<RunReport, EngineError>)>> =
        (0..jobs.len()).map(|_| Vec::new()).collect();
    for (task, outcome) in tasks.iter().zip(run.results) {
        shard_reports[task.job].push((task.shard, outcome));
    }

    let shard_launches = tasks.len() as u64;
    let mut migrations = 0u64;
    let mut link_seconds = 0.0f64;
    let mut block_loads = 0u64;
    let mut block_hits = 0u64;
    let mut block_evictions = 0u64;
    let mut io_seconds = 0.0f64;
    let results = jobs
        .iter()
        .zip(shard_reports)
        .map(|(job, reports)| {
            let merged = merge_job(engine, job, topology, reports);
            if let Ok(report) = &merged {
                if let Some(shards) = &report.shards {
                    migrations += shards.migrations;
                    link_seconds += shards.link_seconds;
                }
                if let Some(blocks) = &report.blocks {
                    block_loads += blocks.loads;
                    block_hits += blocks.hits;
                    block_evictions += blocks.evictions;
                    io_seconds += blocks.io_seconds;
                }
            }
            (job.ticket, merged)
        })
        .collect();
    DrainRun {
        results,
        per_worker: run.per_worker,
        groups,
        shard_launches,
        migrations,
        link_seconds,
        block_loads,
        block_hits,
        block_evictions,
        io_seconds,
    }
}

/// Splits one job into its topology's shard launches.
///
/// A failed preparation gets exactly one launch (which reports the typed
/// error); `Topology::Single` gets the job's own request untouched; the
/// sharded topologies get one contiguous query chunk per device, with the
/// global stream offset advanced so every query keeps its own Philox
/// stream. Devices whose chunk is empty launch nothing — but a job with
/// no queries at all still launches once, so it reports like any other.
fn expand_job(job: &PreparedJob, index: usize, topology: Topology, tasks: &mut Vec<ShardTask>) {
    let devices = topology.devices();
    if job.prepared.is_err() || matches!(topology, Topology::Single) {
        tasks.push(ShardTask {
            job: index,
            shard: 0,
            req: None,
            resident: None,
        });
        return;
    }
    if let Topology::OutOfCore {
        resident_budget, ..
    } = topology
    {
        // A single launch over the whole query set: out-of-core spans one
        // device. Paths are recorded for the block replay (the merge
        // strips them when the caller did not ask), and the device need
        // only hold the resident cache — plus one oversized block, when a
        // single node's adjacency overflows the block target — never the
        // whole graph. That allowance is what serves graphs bigger than
        // memory.
        let mut req = job.req.clone();
        req.config.record_paths = true;
        let resident = job.blocks.as_ref().map_or(resident_budget, |rt| {
            rt.resident_budget().max(rt.max_block_bytes())
        });
        tasks.push(ShardTask {
            job: index,
            shard: 0,
            req: Some(req),
            resident: Some(resident),
        });
        return;
    }
    // Every device of a partitioned fleet must hold its partition
    // (plus the shared row pointers) whether or not queries landed on it:
    // the bar each launch's allocation checks is the busiest shard.
    let resident = topology.is_partitioned().then(|| {
        job.plan
            .as_ref()
            .map(|plan| plan.max_resident_bytes(&job.snap.graph))
            .unwrap_or_else(|| {
                // The session prepare pass always attaches a plan; compute
                // one defensively for direct executor callers.
                PartitionPlan::compute(&job.snap.graph, devices).max_resident_bytes(&job.snap.graph)
            })
    });
    let sub_task = |shard: usize, start: usize, end: usize| {
        let mut req = job
            .req
            .clone()
            .query_offset(job.req.query_offset + start as u64);
        req.queries = job.req.queries[start..end].into();
        // Partitioned merges need full paths for the migration census;
        // recording them is free on the simulated clock (only the host
        // materialises the vectors), and the merge strips them again when
        // the caller did not ask.
        if topology.is_partitioned() {
            req.config.record_paths = true;
        }
        ShardTask {
            job: index,
            shard,
            req: Some(req),
            resident,
        }
    };
    let len = job.req.queries.len();
    if len == 0 {
        tasks.push(sub_task(0, 0, 0));
        return;
    }
    let chunk = len.div_ceil(devices);
    for shard in 0..devices {
        let start = (shard * chunk).min(len);
        let end = ((shard + 1) * chunk).min(len);
        if start < end {
            tasks.push(sub_task(shard, start, end));
        }
    }
}

/// Runs one shard launch — a pure function of the job, the task and the
/// engine.
fn run_task(
    engine: &FlexiWalkerEngine,
    job: &PreparedJob,
    task: &ShardTask,
    _topology: Topology,
) -> Result<RunReport, EngineError> {
    let prepared = job.prepared.as_ref().map_err(Clone::clone)?;
    let req = task.req.as_ref().unwrap_or(&job.req);
    let mut report = match task.resident {
        Some(resident) => engine.run_on_resident(&job.snap, req, prepared, resident)?,
        None => engine.run_on(&job.snap, req, prepared)?,
    };
    // Cached preparation costs nothing at run time; only the first
    // request over a (graph version, workload) pair reports Table-3
    // overheads.
    if job.preprocess_hit {
        report.preprocess_seconds = 0.0;
    }
    if job.profile_hit {
        report.profile_seconds = 0.0;
    }
    Ok(report)
}

/// Folds one job's shard reports into its drained [`RunReport`].
///
/// Errors surface in shard order (deterministic at any worker count).
/// Steps, device activity and sampler tallies sum; the ensemble clock is
/// the slowest shard, plus the migration traffic for partitioned
/// topologies; paths concatenate in shard order — which, with contiguous
/// chunks, is exactly submission order.
fn merge_job(
    engine: &FlexiWalkerEngine,
    job: &PreparedJob,
    topology: Topology,
    reports: Vec<(usize, Result<RunReport, EngineError>)>,
) -> Result<RunReport, EngineError> {
    if matches!(topology, Topology::Single) || job.prepared.is_err() {
        let (_, outcome) = reports
            .into_iter()
            .next()
            .expect("every job launches at least once");
        return outcome;
    }
    if let Topology::OutOfCore {
        resident_budget,
        block_bytes,
    } = topology
    {
        let (_, outcome) = reports
            .into_iter()
            .next()
            .expect("every job launches at least once");
        let mut report = outcome?;
        // The walk output came from the unified kernel — bit-identical to
        // `Single` by construction. The block scheduler replays it
        // against real spilled data (verifying every step) to charge the
        // run its out-of-core cost: loads, evictions and disk time.
        let paths = report
            .paths
            .take()
            .expect("out-of-core launches record paths");
        let rt = match &job.blocks {
            Some(rt) => Arc::clone(rt),
            // The session prepare pass always attaches a runtime; build
            // one defensively for direct executor callers.
            None => Arc::new(
                BlockRuntime::build(&job.snap.graph, block_bytes, resident_budget)
                    .map_err(|e| EngineError::Io(e.to_string()))?,
            ),
        };
        let stats = block_schedule(&paths, &rt, &DiskSpec::nvme())?;
        report.sim_seconds += stats.io_seconds;
        report.saturated_seconds += stats.io_seconds;
        if report.sim_seconds > job.req.config.time_budget {
            return Err(EngineError::OutOfTime {
                budget_secs: job.req.config.time_budget,
            });
        }
        report.paths = job.req.config.record_paths.then_some(paths);
        report.blocks = Some(stats);
        return Ok(report);
    }
    let devices = topology.devices();
    let mut shard_ok: Vec<(usize, RunReport)> = Vec::with_capacity(reports.len());
    for (shard, outcome) in reports {
        shard_ok.push((shard, outcome?));
    }
    let record_paths = job.req.config.record_paths;
    let mut per_shard_steps = vec![0u64; devices];
    let mut paths: Vec<Vec<flexi_graph::NodeId>> = Vec::new();
    let mut merged: Option<RunReport> = None;
    for (shard, mut report) in shard_ok {
        per_shard_steps[shard] = report.steps_taken;
        if let Some(p) = report.paths.take() {
            paths.extend(p);
        }
        match &mut merged {
            None => merged = Some(report),
            Some(m) => {
                m.sim_seconds = m.sim_seconds.max(report.sim_seconds);
                m.saturated_seconds = m.saturated_seconds.max(report.saturated_seconds);
                m.stats.add(&report.stats);
                m.steps_taken += report.steps_taken;
                m.sampler_steps.merge(&report.sampler_steps);
                m.sampler_state_builds += report.sampler_state_builds;
                m.sampler_state_hits += report.sampler_state_hits;
                m.profile_seconds = m.profile_seconds.max(report.profile_seconds);
                m.preprocess_seconds = m.preprocess_seconds.max(report.preprocess_seconds);
            }
        }
    }
    let mut merged = merged.expect("every job launches at least once");
    merged.queries = job.req.queries.len();
    merged.watts = engine.spec().load_watts * devices as f64;
    let (census_steps, migrations, link_seconds) = match topology.link() {
        Some(link) => {
            // Steps execute on the owner of the walker's current node;
            // cross-owner destinations ship the walker over the link, and
            // the (serialising) transfer time lands on the ensemble clock
            // — the paper's expected communication overhead.
            let (census, migrations) = migration_census(&paths, devices);
            let link_seconds = link.seconds(migrations);
            merged.sim_seconds += link_seconds;
            merged.saturated_seconds += link_seconds;
            if merged.sim_seconds > job.req.config.time_budget {
                return Err(EngineError::OutOfTime {
                    budget_secs: job.req.config.time_budget,
                });
            }
            (census, migrations, link_seconds)
        }
        None => (per_shard_steps, 0, 0.0),
    };
    merged.paths = record_paths.then_some(paths);
    merged.shards = Some(ShardStats {
        shards: devices,
        per_shard_steps: census_steps,
        migrations,
        link_seconds,
    });
    Ok(merged)
}
