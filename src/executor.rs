//! The pipelined drain executor: fans a session's pending walk requests —
//! and, under a multi-device [`Topology`], their per-shard sub-launches —
//! across a host worker pool, merging each job the moment its last shard
//! returns instead of barriering the whole drain.
//!
//! [`Session::drain`](crate::session::Session::drain) runs in two phases:
//!
//! 1. **Prepare** (sequential, on the calling thread): each pending
//!    request resolves its graph handle, pins a [`GraphSnapshot`] — one
//!    per graph per drain, shared by every request in the same batch
//!    group — and pulls its compiled estimators, aggregates, profile and
//!    (for partitioned topologies) the epoch's cached
//!    [`PartitionPlan`] out of the session caches (building them on a
//!    miss). This is the only phase that mutates the session, so the
//!    caches need no locks.
//! 2. **Execute** (pipelined): the prepared jobs are grouped by
//!    `(graph id, epoch, device)`, expanded into one launch per shard of
//!    the session [`Topology`], and fanned across the [`WorkerPool`] via
//!    [`WorkerPool::run_pipelined`]. Each launch is a pure call into
//!    [`FlexiWalkerEngine::run_on`] (or
//!    [`run_on_resident`](FlexiWalkerEngine::run_on_resident), for
//!    partitioned shards whose devices hold only their partition) over
//!    its pinned snapshot; the worker that finishes a job's **last**
//!    shard folds that job's reports immediately, so merge work runs
//!    concurrently with other jobs' launches instead of serialising
//!    behind a drain-wide barrier.
//!
//! ## Pipeline stages and the merge-ordering invariant
//!
//! The executor accounts four host-side stages in
//! [`flexi_core::StageTiming`]: *prepare* (timed by the
//! session), *launch*, *merge* and *replay*, plus the *merge tail* — the
//! merge/replay seconds left after the last launch finished, which the
//! `pipeline_drain` bench gates on. Determinism survives the pipelining
//! because of a strict split:
//!
//! - **Merges may run anywhere, in any completion order.** A per-job fold
//!   is a pure function of that job's shard reports, so which worker runs
//!   it — and when — cannot change its value.
//! - **Everything order-sensitive happens in submission order.** Merged
//!   values are gathered back by job index on the calling thread, and all
//!   drain-level accumulation (migrations, link seconds, block counters —
//!   f64 sums, where order changes bits) runs there, job by job.
//! - **Out-of-core replays are funnelled.** They mutate the epoch's
//!   shared [`ResidentCache`](flexi_core::ResidentCache), so a completing
//!   worker parks its job's reports and whichever worker holds the replay
//!   cursor drains every parked job that is next in line — sequential, in
//!   submission order, overlapping other jobs' launches but never each
//!   other.
//!
//! Output is therefore bit-identical at any worker count, which
//! `tests/integration_executor.rs` pins across workers {1, 2, 4, 8}.
//!
//! ## Shard expansion
//!
//! Under [`Topology::MultiDevice`] and [`Topology::Partitioned`] a job's
//! query set splits into `devices` *contiguous* chunks, each launched as
//! its own sub-request whose [`WalkRequest::query_offset`] is advanced by
//! the chunk start. Per-query Philox streams key randomness off the
//! *global* query index, so the concatenated shard outputs are
//! bit-identical to the single-device run — sharding changes where work
//! executes and what the simulated clock reads, never what the walks do.
//! (Contiguous chunking is the right split for determinism; walkers under
//! a partitioned topology migrate to each step's owner regardless of
//! which chunk launched them, and the migration census below accounts
//! steps to the owner of the walker's current node.)
//!
//! ## Out-of-core replay
//!
//! Under [`Topology::OutOfCore`] a job launches once (one device) with
//! paths force-recorded and the OOM bar lowered to the resident-cache
//! budget (plus one oversized block) — the graph itself never has to fit.
//! The merge then replays the recorded paths through the epoch's cached
//! [`BlockRuntime`] via [`flexi_core::block_schedule`]: walkers pool per
//! block, the most-pending block activates next, every step is verified
//! against spilled block data, and the simulated NVMe time of the cache
//! misses lands on the job's clock. Replays run through the submission-
//! order funnel above, so cache state — and with it every counter — is
//! deterministic at any worker count.
//!
//! Per-job shard reports merge shard-major: steps, device activity and
//! sampler tallies sum; the ensemble clock is the slowest shard plus — for
//! partitioned topologies — the serialising migration traffic on the
//! [`LinkSpec`](flexi_core::LinkSpec); [`RunReport::shards`] carries the
//! per-shard step census, migration count and link seconds. A job that
//! runs out of budget *after* the census or the block replay still
//! charged that simulated work, so its partial [`ShardStats`] /
//! [`BlockStats`] ride the error path into the drain totals instead of
//! vanishing with the report. `tests/integration_topology.rs` pins
//! walk-identity across `topology ∈ {single, multi(2), partitioned(2, 4)}
//! × workers ∈ {1, 4}` and epoch splits.

use crate::session::Ticket;
use flexi_core::{
    block_schedule, migration_census, BlockRuntime, BlockStats, DiskSpec, EngineError,
    FlexiWalkerEngine, PartitionPlan, PreparedState, RunReport, ShardStats, StageTiming, Topology,
    WalkRequest, WorkerPool,
};
use flexi_graph::GraphSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Batch grouping key: requests over the same graph version on the same
/// device form one group and share a pinned snapshot.
pub type GroupKey = (u64, u64, &'static str);

/// One pending request after the session's sequential preparation pass:
/// everything [`FlexiWalkerEngine::run_on`] needs, with no remaining
/// dependency on the session's mutable caches.
#[derive(Debug)]
pub struct PreparedJob {
    /// The submission ticket the report merges back under.
    pub ticket: Ticket,
    /// The owned walk request (walker handle resolved when preparation
    /// succeeded).
    pub req: WalkRequest,
    /// The graph version pinned for this job's launch.
    pub snap: GraphSnapshot,
    /// Cached (or freshly built) estimators, aggregates and profile — or
    /// the typed preparation failure (unknown walker name, walker compile
    /// error) the job reports instead of running.
    pub prepared: Result<PreparedState, EngineError>,
    /// The epoch's partition plan, attached by the prepare pass when the
    /// session topology partitions the graph (`None` otherwise).
    pub plan: Option<Arc<PartitionPlan>>,
    /// The epoch's block runtime (spill + resident cache), attached by
    /// the prepare pass under [`Topology::OutOfCore`] (`None` otherwise).
    pub blocks: Option<Arc<BlockRuntime>>,
    /// Whether the aggregates came from the session cache (Table-3
    /// preprocess overhead reports as zero).
    pub preprocess_hit: bool,
    /// Whether the profile came from the session cache.
    pub profile_hit: bool,
}

impl PreparedJob {
    /// The job's batch group.
    pub fn group(&self, engine: &FlexiWalkerEngine) -> GroupKey {
        (
            self.snap.version.graph_id,
            self.snap.version.epoch,
            engine.spec().name,
        )
    }
}

/// Outcome of one drain through the executor.
#[derive(Debug)]
pub struct DrainRun {
    /// Per-request outcomes, in submission order.
    pub results: Vec<(Ticket, Result<RunReport, EngineError>)>,
    /// Shard launches executed by each worker slot (scheduling-dependent;
    /// the merged results are not). Under `Topology::Single` a launch is
    /// exactly one request.
    pub per_worker: Vec<u64>,
    /// Distinct `(graph id, epoch, device)` batch groups in this drain.
    pub groups: usize,
    /// Shard sub-launches this drain fanned out (equals the request count
    /// under `Topology::Single`).
    pub shard_launches: u64,
    /// Walker migrations across the simulated interconnect, summed over
    /// the drain's partitioned jobs — including jobs whose budget expired
    /// after the census charged the traffic.
    pub migrations: u64,
    /// Simulated link seconds those migrations cost, summed likewise.
    pub link_seconds: f64,
    /// Blocks read from the spill file, summed over the drain's
    /// out-of-core jobs — including jobs whose budget expired after the
    /// replay charged the I/O.
    pub block_loads: u64,
    /// Block activations served from the resident cache, summed likewise.
    pub block_hits: u64,
    /// Blocks evicted from the resident cache, summed likewise.
    pub block_evictions: u64,
    /// Simulated disk seconds the block loads cost, summed likewise.
    pub io_seconds: f64,
    /// Host wall seconds per pipeline stage for this drain's execute
    /// phase (`prepare_seconds` is zero here; the session fills it from
    /// its own prepare pass).
    pub stages: StageTiming,
    /// Per-job host wall seconds from the start of the execute phase to
    /// that job's merge completing, in submission order — the pipelined
    /// completion offset each drained ticket's latency sample is built
    /// from.
    pub completion_seconds: Vec<f64>,
}

/// One schedulable launch: a job index, the shard it stands for, and the
/// chunked sub-request (`None` = the job's own request, the
/// single-topology fast path that avoids a clone).
struct ShardTask {
    job: usize,
    shard: usize,
    req: Option<WalkRequest>,
    /// Device-resident bytes this launch must fit (partitioned topologies
    /// check the busiest partition; duplicated/single launches check the
    /// whole graph inside `run_on`).
    resident: Option<usize>,
}

/// One job's merged outcome, plus any stats the error path would
/// otherwise drop: `shards`/`blocks` are populated **only** when
/// `outcome` is `Err` but the job charged real simulated work first
/// (migration census, block replay) — an `Ok` report carries its own.
struct MergedJob {
    outcome: Result<RunReport, EngineError>,
    shards: Option<ShardStats>,
    blocks: Option<BlockStats>,
}

impl MergedJob {
    fn plain(outcome: Result<RunReport, EngineError>) -> Self {
        MergedJob {
            outcome,
            shards: None,
            blocks: None,
        }
    }
}

/// Executes prepared jobs across `workers` host threads with pipelined
/// per-job merges, gathering the reports in submission order.
///
/// Jobs are scheduled group-by-group (requests over the same graph
/// version run adjacently, for cache locality), expanded into one launch
/// per topology shard, and fanned across
/// [`WorkerPool::run_pipelined`]: the worker that returns a job's last
/// shard merges that job immediately, while out-of-core replays go
/// through a submission-ordered funnel (they share cache state). Each job
/// lands back at its own submission index and the drain-level f64
/// accumulation runs on the calling thread in submission order, so the
/// output is independent of the grouping, the worker count and the shard
/// interleaving. `workers == 1` runs launches and merges inline on the
/// calling thread — exactly the sequential path.
pub fn execute(
    engine: &FlexiWalkerEngine,
    jobs: Vec<PreparedJob>,
    workers: usize,
    topology: Topology,
) -> DrainRun {
    let topology = topology.normalized();
    // Group by first appearance: stable within a group, groups in
    // submission order of their first member.
    let mut first_seen: HashMap<GroupKey, usize> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        first_seen.entry(job.group(engine)).or_insert(i);
    }
    let groups = first_seen.len();
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (first_seen[&jobs[i].group(engine)], i));

    // Expand each job into its shard launches, in group order.
    let mut tasks: Vec<ShardTask> = Vec::new();
    for &i in &order {
        expand_job(&jobs[i], i, topology, &mut tasks);
    }
    let shard_launches = tasks.len() as u64;

    // Shared pipeline state. Merged jobs park in per-job slots (filled by
    // whichever worker completes them), timing lands in atomics, and the
    // calling thread gathers everything in submission order afterwards.
    let t0 = Instant::now();
    let now = || t0.elapsed().as_nanos() as u64;
    let merged: Vec<Mutex<Option<MergedJob>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    let completion: Vec<AtomicU64> = (0..jobs.len()).map(|_| AtomicU64::new(0)).collect();
    let launch_nanos = AtomicU64::new(0);
    let last_launch_end = AtomicU64::new(0);
    // (start, end, is_replay) per merge/replay, for the stage report.
    let merge_events: Mutex<Vec<(u64, u64, bool)>> = Mutex::new(Vec::new());

    // The out-of-core replay funnel: completed jobs park their reports,
    // and whoever holds the cursor replays every parked job that is next
    // in submission order. `try_lock` keeps non-next workers free to
    // launch; the post-release recheck closes the race where a job parks
    // while the cursor holder is on its way out.
    let funnelled = matches!(topology, Topology::OutOfCore { .. });
    type Parked = Vec<(usize, Result<RunReport, EngineError>)>;
    let parked: Vec<Mutex<Option<Parked>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    let ready: Vec<AtomicBool> = (0..jobs.len()).map(|_| AtomicBool::new(false)).collect();
    let cursor = Mutex::new(0usize);
    let cursor_at = AtomicUsize::new(0);

    let finish = |job: usize, m: MergedJob, start: u64, end: u64, is_replay: bool| {
        merge_events.lock().unwrap().push((start, end, is_replay));
        completion[job].store(end, Ordering::Relaxed);
        *merged[job].lock().unwrap() = Some(m);
    };
    let pump = || loop {
        let Ok(mut cur) = cursor.try_lock() else {
            // The holder's post-release recheck will pick our job up.
            return;
        };
        while *cur < jobs.len() && ready[*cur].load(Ordering::SeqCst) {
            let job = *cur;
            let reports = parked[job]
                .lock()
                .unwrap()
                .take()
                .expect("a ready job has parked reports");
            let start = now();
            let m = replay_out_of_core(&jobs[job], topology, reports);
            finish(job, m, start, now(), true);
            *cur += 1;
        }
        cursor_at.store(*cur, Ordering::SeqCst);
        drop(cur);
        let at = cursor_at.load(Ordering::SeqCst);
        if at >= jobs.len() || !ready[at].load(Ordering::SeqCst) {
            return;
        }
        // The next job parked between our scan and the unlock; re-enter.
    };

    // Chunk of 1: shard launches are whole walk batches, heavyweight
    // enough that per-task popping balances better than it contends.
    let per_worker = WorkerPool::new(workers).run_pipelined(
        &tasks,
        1,
        |i| tasks[i].job,
        jobs.len(),
        |_, task| {
            let start = now();
            let outcome = run_task(engine, &jobs[task.job], task, topology);
            let end = now();
            launch_nanos.fetch_add(end - start, Ordering::Relaxed);
            last_launch_end.fetch_max(end, Ordering::Relaxed);
            outcome
        },
        |job, results| {
            // Items gather in ascending task order, which is shard order.
            let reports: Parked = results
                .into_iter()
                .map(|(i, outcome)| (tasks[i].shard, outcome))
                .collect();
            if funnelled {
                *parked[job].lock().unwrap() = Some(reports);
                ready[job].store(true, Ordering::SeqCst);
                pump();
            } else {
                let start = now();
                let m = merge_shards(engine, &jobs[job], topology, reports);
                finish(job, m, start, now(), false);
            }
        },
    );

    // Stage report: busy seconds per stage, and the unhidden tail — the
    // merge/replay time left after the drain's last launch finished.
    let wall_seconds = t0.elapsed().as_secs_f64();
    let last_end = last_launch_end.load(Ordering::Relaxed);
    let mut merge_seconds = 0.0f64;
    let mut replay_seconds = 0.0f64;
    let mut merge_tail_seconds = 0.0f64;
    for &(start, end, is_replay) in merge_events.lock().unwrap().iter() {
        let dur = (end - start) as f64 * 1e-9;
        if is_replay {
            replay_seconds += dur;
        } else {
            merge_seconds += dur;
        }
        merge_tail_seconds += end.saturating_sub(start.max(last_end)) as f64 * 1e-9;
    }
    let stages = StageTiming {
        prepare_seconds: 0.0, // the session times its own prepare pass
        launch_seconds: launch_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        merge_seconds,
        replay_seconds,
        merge_tail_seconds,
        wall_seconds,
    };

    // Submission-order gather on the calling thread: all order-sensitive
    // accumulation (f64 sums) happens here, never on the workers.
    let mut migrations = 0u64;
    let mut link_seconds = 0.0f64;
    let mut block_loads = 0u64;
    let mut block_hits = 0u64;
    let mut block_evictions = 0u64;
    let mut io_seconds = 0.0f64;
    let mut results = Vec::with_capacity(jobs.len());
    let mut completion_seconds = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let m = merged[i]
            .lock()
            .unwrap()
            .take()
            .expect("the pipelined drain merges every job");
        let (shards, blocks) = match &m.outcome {
            Ok(report) => (report.shards.as_ref(), report.blocks.as_ref()),
            // The accounting fix: a job whose budget expired *after* the
            // census or the block replay still charged that simulated
            // work — its partial stats ride the error path into the
            // drain totals.
            Err(_) => (m.shards.as_ref(), m.blocks.as_ref()),
        };
        if let Some(s) = shards {
            migrations += s.migrations;
            link_seconds += s.link_seconds;
        }
        if let Some(b) = blocks {
            block_loads += b.loads;
            block_hits += b.hits;
            block_evictions += b.evictions;
            io_seconds += b.io_seconds;
        }
        completion_seconds.push(completion[i].load(Ordering::Relaxed) as f64 * 1e-9);
        results.push((job.ticket, m.outcome));
    }
    DrainRun {
        results,
        per_worker,
        groups,
        shard_launches,
        migrations,
        link_seconds,
        block_loads,
        block_hits,
        block_evictions,
        io_seconds,
        stages,
        completion_seconds,
    }
}

/// Splits one job into its topology's shard launches.
///
/// A failed preparation gets exactly one launch (which reports the typed
/// error); `Topology::Single` gets the job's own request untouched; the
/// sharded topologies get one contiguous query chunk per device, with the
/// global stream offset advanced so every query keeps its own Philox
/// stream. Devices whose chunk is empty launch nothing — but a job with
/// no queries at all still launches once, so it reports like any other.
fn expand_job(job: &PreparedJob, index: usize, topology: Topology, tasks: &mut Vec<ShardTask>) {
    let devices = topology.devices();
    if job.prepared.is_err() || matches!(topology, Topology::Single) {
        tasks.push(ShardTask {
            job: index,
            shard: 0,
            req: None,
            resident: None,
        });
        return;
    }
    if let Topology::OutOfCore {
        resident_budget, ..
    } = topology
    {
        // A single launch over the whole query set: out-of-core spans one
        // device. Paths are recorded for the block replay (the merge
        // strips them when the caller did not ask), and the device need
        // only hold the resident cache — plus one oversized block, when a
        // single node's adjacency overflows the block target — never the
        // whole graph. That allowance is what serves graphs bigger than
        // memory.
        let mut req = job.req.clone();
        req.config.record_paths = true;
        let resident = job.blocks.as_ref().map_or(resident_budget, |rt| {
            rt.resident_budget().max(rt.max_block_bytes())
        });
        tasks.push(ShardTask {
            job: index,
            shard: 0,
            req: Some(req),
            resident: Some(resident),
        });
        return;
    }
    // Every device of a partitioned fleet must hold its partition
    // (plus the shared row pointers) whether or not queries landed on it:
    // the bar each launch's allocation checks is the busiest shard.
    let resident = topology.is_partitioned().then(|| {
        job.plan
            .as_ref()
            .map(|plan| plan.max_resident_bytes(&job.snap.graph))
            .unwrap_or_else(|| {
                // The session prepare pass always attaches a plan; compute
                // one defensively for direct executor callers.
                PartitionPlan::compute(&job.snap.graph, devices).max_resident_bytes(&job.snap.graph)
            })
    });
    let sub_task = |shard: usize, start: usize, end: usize| {
        let mut req = job
            .req
            .clone()
            .query_offset(job.req.query_offset + start as u64);
        req.queries = job.req.queries[start..end].into();
        // Partitioned merges need full paths for the migration census;
        // recording them is free on the simulated clock (only the host
        // materialises the vectors), and the merge strips them again when
        // the caller did not ask.
        if topology.is_partitioned() {
            req.config.record_paths = true;
        }
        ShardTask {
            job: index,
            shard,
            req: Some(req),
            resident,
        }
    };
    let len = job.req.queries.len();
    if len == 0 {
        tasks.push(sub_task(0, 0, 0));
        return;
    }
    let chunk = len.div_ceil(devices);
    for shard in 0..devices {
        let start = (shard * chunk).min(len);
        let end = ((shard + 1) * chunk).min(len);
        if start < end {
            tasks.push(sub_task(shard, start, end));
        }
    }
}

/// Runs one shard launch — a pure function of the job, the task and the
/// engine.
fn run_task(
    engine: &FlexiWalkerEngine,
    job: &PreparedJob,
    task: &ShardTask,
    _topology: Topology,
) -> Result<RunReport, EngineError> {
    let prepared = job.prepared.as_ref().map_err(Clone::clone)?;
    let req = task.req.as_ref().unwrap_or(&job.req);
    let mut report = match task.resident {
        Some(resident) => engine.run_on_resident(&job.snap, req, prepared, resident)?,
        None => engine.run_on(&job.snap, req, prepared)?,
    };
    // Cached preparation costs nothing at run time; only the first
    // request over a (graph version, workload) pair reports Table-3
    // overheads.
    if job.preprocess_hit {
        report.preprocess_seconds = 0.0;
    }
    if job.profile_hit {
        report.profile_seconds = 0.0;
    }
    Ok(report)
}

/// Folds one job's shard reports into its drained [`RunReport`] — a pure
/// per-job function, safe to run on any worker in any completion order.
///
/// Errors surface in shard order (deterministic at any worker count).
/// Steps, device activity and sampler tallies sum; the ensemble clock is
/// the slowest shard, plus the migration traffic for partitioned
/// topologies; paths concatenate in shard order — which, with contiguous
/// chunks, is exactly submission order. A budget that expires after the
/// census charged its link time returns the partial [`ShardStats`]
/// alongside the error instead of dropping it.
fn merge_shards(
    engine: &FlexiWalkerEngine,
    job: &PreparedJob,
    topology: Topology,
    reports: Vec<(usize, Result<RunReport, EngineError>)>,
) -> MergedJob {
    if matches!(topology, Topology::Single) || job.prepared.is_err() {
        let (_, outcome) = reports
            .into_iter()
            .next()
            .expect("every job launches at least once");
        return MergedJob::plain(outcome);
    }
    let devices = topology.devices();
    let mut shard_ok: Vec<(usize, RunReport)> = Vec::with_capacity(reports.len());
    for (shard, outcome) in reports {
        match outcome {
            Ok(report) => shard_ok.push((shard, report)),
            Err(e) => return MergedJob::plain(Err(e)),
        }
    }
    let record_paths = job.req.config.record_paths;
    let mut per_shard_steps = vec![0u64; devices];
    let mut paths: Vec<Vec<flexi_graph::NodeId>> = Vec::new();
    let mut merged: Option<RunReport> = None;
    for (shard, mut report) in shard_ok {
        per_shard_steps[shard] = report.steps_taken;
        if let Some(p) = report.paths.take() {
            paths.extend(p);
        }
        match &mut merged {
            None => merged = Some(report),
            Some(m) => {
                m.sim_seconds = m.sim_seconds.max(report.sim_seconds);
                m.saturated_seconds = m.saturated_seconds.max(report.saturated_seconds);
                m.stats.add(&report.stats);
                m.steps_taken += report.steps_taken;
                m.sampler_steps.merge(&report.sampler_steps);
                m.sampler_state_builds += report.sampler_state_builds;
                m.sampler_state_hits += report.sampler_state_hits;
                m.profile_seconds = m.profile_seconds.max(report.profile_seconds);
                m.preprocess_seconds = m.preprocess_seconds.max(report.preprocess_seconds);
            }
        }
    }
    let mut merged = merged.expect("every job launches at least once");
    merged.queries = job.req.queries.len();
    merged.watts = engine.spec().load_watts * devices as f64;
    let (census_steps, migrations, link_seconds) = match topology.link() {
        Some(link) => {
            // Steps execute on the owner of the walker's current node;
            // cross-owner destinations ship the walker over the link, and
            // the (serialising) transfer time lands on the ensemble clock
            // — the paper's expected communication overhead.
            let (census, migrations) = migration_census(&paths, devices);
            let link_seconds = link.seconds(migrations);
            merged.sim_seconds += link_seconds;
            merged.saturated_seconds += link_seconds;
            if merged.sim_seconds > job.req.config.time_budget {
                // The budget tripped *after* the census: the migrations
                // and link seconds were charged, so they ride the error.
                return MergedJob {
                    outcome: Err(EngineError::OutOfTime {
                        budget_secs: job.req.config.time_budget,
                    }),
                    shards: Some(ShardStats {
                        shards: devices,
                        per_shard_steps: census,
                        migrations,
                        link_seconds,
                    }),
                    blocks: None,
                };
            }
            (census, migrations, link_seconds)
        }
        None => (per_shard_steps, 0, 0.0),
    };
    merged.paths = record_paths.then_some(paths);
    merged.shards = Some(ShardStats {
        shards: devices,
        per_shard_steps: census_steps,
        migrations,
        link_seconds,
    });
    MergedJob::plain(Ok(merged))
}

/// Replays one out-of-core job's recorded paths through the epoch's
/// [`BlockRuntime`]. Mutates the shared resident cache, so callers go
/// through the submission-order funnel — never concurrently.
///
/// The walk output came from the unified kernel — bit-identical to
/// `Single` by construction. The block scheduler replays it against real
/// spilled data (verifying every step) to charge the run its out-of-core
/// cost: loads, evictions and disk time. A budget that expires after the
/// replay charged its I/O returns the partial [`BlockStats`] alongside
/// the error instead of dropping it.
fn replay_out_of_core(
    job: &PreparedJob,
    topology: Topology,
    reports: Vec<(usize, Result<RunReport, EngineError>)>,
) -> MergedJob {
    let Topology::OutOfCore {
        resident_budget,
        block_bytes,
    } = topology
    else {
        unreachable!("the replay funnel only runs under Topology::OutOfCore");
    };
    let (_, outcome) = reports
        .into_iter()
        .next()
        .expect("every job launches at least once");
    let mut report = match outcome {
        Ok(report) => report,
        Err(e) => return MergedJob::plain(Err(e)),
    };
    let paths = report
        .paths
        .take()
        .expect("out-of-core launches record paths");
    let rt = match &job.blocks {
        Some(rt) => Arc::clone(rt),
        // The session prepare pass always attaches a runtime; build
        // one defensively for direct executor callers.
        None => match BlockRuntime::build(&job.snap.graph, block_bytes, resident_budget) {
            Ok(rt) => Arc::new(rt),
            Err(e) => return MergedJob::plain(Err(EngineError::Io(e.to_string()))),
        },
    };
    let stats = match block_schedule(&paths, &rt, &DiskSpec::nvme()) {
        Ok(stats) => stats,
        Err(e) => return MergedJob::plain(Err(e)),
    };
    report.sim_seconds += stats.io_seconds;
    report.saturated_seconds += stats.io_seconds;
    if report.sim_seconds > job.req.config.time_budget {
        // The budget tripped *after* the replay: the loads, evictions
        // and disk seconds were charged, so they ride the error.
        return MergedJob {
            outcome: Err(EngineError::OutOfTime {
                budget_secs: job.req.config.time_budget,
            }),
            shards: None,
            blocks: Some(stats),
        };
    }
    report.paths = job.req.config.record_paths.then_some(paths);
    report.blocks = Some(stats);
    MergedJob::plain(Ok(report))
}
