//! The always-on serving layer: concurrent ingest and drain with epoch
//! snapshotting, admission control and latency accounting.
//!
//! [`Session`] is a batch API — submissions and drains alternate on one
//! thread, so ingestion and serving cannot overlap. [`WalkServer`] wraps
//! a session in a long-lived **service loop** on its own thread and turns
//! the front half into a concurrent, bounded, ticket-based interface:
//!
//! - **Concurrent ingest.** Any number of client threads submit
//!   [`WalkRequest`]s and [`GraphUpdate`] batches through a bounded
//!   [`AdmissionQueue`]; admission never waits for a drain in progress.
//!   While the loop drains epoch-`N` requests against their pinned
//!   [`GraphSnapshot`](flexi_graph::GraphSnapshot)s, the commands that
//!   will form epoch `N+1` queue up behind it — the copy-on-write
//!   [`GraphHandle`] makes the overlap safe by construction.
//! - **Admission control.** The queue is bounded
//!   ([`WalkServerBuilder::capacity`]) with a pluggable overload
//!   [`AdmissionPolicy`]: reject new work, block the submitter
//!   (backpressure, the default), or shed the oldest queued commands.
//!   Rejected and shed requests fail fast with a typed [`ServeError`] —
//!   overload degrades explicitly instead of growing an unbounded queue
//!   in front of the [`QueryQueue`](flexi_core::QueryQueue).
//! - **Ticket-based responses.** [`WalkServer::submit`] returns a
//!   [`WalkTicket`] immediately; [`WalkTicket::wait`] parks until the
//!   serving loop publishes the [`RunReport`]. Updates mirror this with
//!   [`UpdateTicket`].
//! - **Latency SLOs.** Every served request records its
//!   admission-to-response latency into a [`LatencyHistogram`];
//!   [`ServerStats`] surfaces p50/p95/p99 alongside the admission
//!   counters and the inner [`SessionStats`] — the numbers the
//!   `serve_latency` bench gates in CI.
//!
//! ## Determinism: served ≡ drained offline
//!
//! The loop processes commands in **admission order** and treats every
//! update batch as an epoch boundary: walk requests admitted before it
//! drain first (at the pre-update epoch), then the batch applies through
//! [`Session::apply_updates`] (incremental cache migration included),
//! then serving resumes at the new epoch. Because the session assigns
//! each query its global stream index at submission and per-query Philox
//! streams are keyed off that index, a served request returns paths
//! **bit-identical** to an offline session replaying the same command
//! sequence with explicit drains at the update boundaries — at every
//! worker count and under every [`Topology`]
//! (`tests/integration_serve.rs` pins the full sweep).
//!
//! ```
//! use flexiwalker::prelude::*;
//!
//! let csr = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 7);
//! let csr = WeightModel::UniformReal.apply(csr, 7);
//! let graph = GraphHandle::new(csr);
//!
//! let server = WalkServer::builder().workers(2).capacity(64).serve();
//! // Ingest: a walk, a live update, another walk — from this (or any)
//! // thread, without waiting for drains.
//! let queries: Vec<NodeId> = (0..32).collect();
//! let before = server
//!     .submit(WalkRequest::new(&graph, "node2vec", &queries).steps(8))
//!     .unwrap();
//! let update = server
//!     .apply_updates(&graph, vec![GraphUpdate::AddEdge {
//!         src: 0, dst: 5, weight: 2.0, label: 0,
//!     }])
//!     .unwrap();
//! let after = server
//!     .submit(WalkRequest::new(&graph, "node2vec", &queries).steps(8))
//!     .unwrap();
//! // Tickets resolve in admission order: pre-update walks at epoch 0,
//! // post-update walks at epoch 1.
//! assert_eq!(before.wait().unwrap().graph_version.epoch, 0);
//! assert_eq!(update.wait().unwrap().version.epoch, 1);
//! assert_eq!(after.wait().unwrap().graph_version.epoch, 1);
//! let stats = server.shutdown();
//! assert_eq!(stats.served, 2);
//! assert_eq!(stats.serve_latency.count(), 2);
//! ```

use crate::session::{Session, SessionBuilder, SessionStats, Ticket};
use flexi_core::{
    Admission, AdmissionPolicy, AdmissionQueue, AdmissionStats, EngineError, LatencyHistogram,
    RunReport, Topology, WalkRequest, WalkerDef,
};
use flexi_gpu_sim::DeviceSpec;
use flexi_graph::{GraphError, GraphHandle, GraphUpdate, UpdateOutcome};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a served command failed before (or instead of) producing a result.
#[derive(Debug, PartialEq)]
pub enum ServeError {
    /// The admission queue was full under [`AdmissionPolicy::Reject`].
    Rejected,
    /// The command was admitted but later evicted by a newer one under
    /// [`AdmissionPolicy::ShedOldest`].
    Shed,
    /// The server shut down before the command could be served.
    Closed,
    /// The walk ran and the engine reported an error (OOM, OOT,
    /// unknown walker, ...).
    Engine(EngineError),
    /// The update batch failed validation; the graph is unchanged.
    Graph(GraphError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "admission queue full (policy: reject)"),
            ServeError::Shed => write!(f, "shed from the admission queue (policy: shed-oldest)"),
            ServeError::Closed => write!(f, "server closed before the command was served"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Graph(e) => write!(f, "update rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One-shot response slot shared between a ticket and the serving loop.
#[derive(Debug)]
struct Slot<T> {
    state: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, value: T) {
        let mut state = self.state.lock().expect("response slot poisoned");
        debug_assert!(state.is_none(), "response slot fulfilled twice");
        *state = Some(value);
        self.ready.notify_all();
    }

    fn wait(&self) -> T {
        let mut state = self.state.lock().expect("response slot poisoned");
        loop {
            if let Some(value) = state.take() {
                return value;
            }
            state = self.ready.wait(state).expect("response slot poisoned");
        }
    }

    fn is_ready(&self) -> bool {
        self.state.lock().expect("response slot poisoned").is_some()
    }
}

/// Handle to one in-flight walk request.
///
/// Returned immediately by [`WalkServer::submit`]; resolves once the
/// serving loop drains the request. Dropping the ticket abandons the
/// response without cancelling the walk.
#[derive(Debug)]
#[must_use = "a walk ticket resolves to the request's report"]
pub struct WalkTicket {
    slot: Arc<Slot<Result<RunReport, ServeError>>>,
}

impl WalkTicket {
    /// Blocks until the request is served and returns its report.
    pub fn wait(self) -> Result<RunReport, ServeError> {
        self.slot.wait()
    }

    /// Whether the response is already available ([`WalkTicket::wait`]
    /// would return without blocking).
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }
}

/// Handle to one in-flight update batch, mirroring [`WalkTicket`].
#[derive(Debug)]
#[must_use = "an update ticket resolves to the batch's outcome"]
pub struct UpdateTicket {
    slot: Arc<Slot<Result<UpdateOutcome, ServeError>>>,
}

impl UpdateTicket {
    /// Blocks until the batch is applied and returns its outcome.
    pub fn wait(self) -> Result<UpdateOutcome, ServeError> {
        self.slot.wait()
    }

    /// Whether the outcome is already available.
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }
}

/// One admitted command, carrying its response slot and admission time.
#[derive(Debug)]
enum Command {
    /// Serve a walk request.
    Walk {
        req: WalkRequest,
        admitted: Instant,
        slot: Arc<Slot<Result<RunReport, ServeError>>>,
    },
    /// Apply an update batch — an epoch boundary in the command stream.
    Update {
        graph: GraphHandle,
        batch: Vec<GraphUpdate>,
        admitted: Instant,
        slot: Arc<Slot<Result<UpdateOutcome, ServeError>>>,
    },
}

impl Command {
    /// Resolves the command's ticket with a failure (shed / closed).
    fn fail(self, err: ServeError) {
        match self {
            Command::Walk { slot, .. } => slot.fulfill(Err(err)),
            Command::Update { slot, .. } => slot.fulfill(Err(err)),
        }
    }
}

/// Counters the serving loop publishes after every cycle.
#[derive(Debug, Default)]
struct LoopStats {
    session: SessionStats,
    serve_latency: LatencyHistogram,
    update_latency: LatencyHistogram,
    serve_cycles: u64,
    served: u64,
    updates_applied: u64,
}

/// A snapshot of everything observable about a [`WalkServer`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// The inner session's cache/executor counters (including its
    /// per-drain latency histogram).
    pub session: SessionStats,
    /// Admission-to-response latency of served walk requests — the SLO
    /// distribution (p50/p95/p99) the serve bench gates on.
    pub serve_latency: LatencyHistogram,
    /// Admission-to-applied latency of update batches.
    pub update_latency: LatencyHistogram,
    /// Admission-queue counters (admitted / rejected / shed /
    /// block-waits / peak depth).
    pub admission: AdmissionStats,
    /// Serving-loop cycles that processed at least one command.
    pub serve_cycles: u64,
    /// Walk requests answered (successfully or with a typed engine
    /// error). Excludes rejected and shed requests.
    pub served: u64,
    /// Update batches applied (epochs ingested while serving).
    pub updates_applied: u64,
}

impl ServerStats {
    /// Blocks read from the spill file by out-of-core drains.
    pub fn block_loads(&self) -> u64 {
        self.session.block_loads
    }

    /// Out-of-core block activations served from the resident cache.
    pub fn block_hits(&self) -> u64 {
        self.session.block_hits
    }

    /// Blocks evicted from the resident cache to honour its budget.
    pub fn block_evictions(&self) -> u64 {
        self.session.block_evictions
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve latency: {}  |  update latency: {}",
            self.serve_latency, self.update_latency
        )?;
        writeln!(
            f,
            "served {} requests in {} cycles, {} update batches applied \
             ({} epoch(s), plans: {} built / {} hit / {} refreshed, \
             sampler state: {} built / {} hit / {} patched)",
            self.served,
            self.serve_cycles,
            self.updates_applied,
            self.session.epochs_applied,
            self.session.plan_builds,
            self.session.plan_hits,
            self.session.plan_refreshes,
            self.session.sampler_state_builds,
            self.session.sampler_state_hits,
            self.session.sampler_state_patches,
        )?;
        writeln!(
            f,
            "blocks: {} spilled / {} loaded / {} hit / {} evicted",
            self.session.block_spills,
            self.session.block_loads,
            self.session.block_hits,
            self.session.block_evictions,
        )?;
        write!(
            f,
            "admission: {} admitted, {} rejected, {} shed, {} block-waits (peak depth {})",
            self.admission.admitted,
            self.admission.rejected,
            self.admission.shed,
            self.admission.block_waits,
            self.admission.peak_depth
        )
    }
}

/// State shared between the server front and its serving loop.
#[derive(Debug)]
struct Shared {
    queue: AdmissionQueue<Command>,
    paused: Mutex<bool>,
    resume: Condvar,
    stats: Mutex<LoopStats>,
}

impl Shared {
    /// Parks the serving loop while the server is paused.
    fn pause_gate(&self) {
        let mut paused = self.paused.lock().expect("pause flag poisoned");
        while *paused {
            paused = self.resume.wait(paused).expect("pause flag poisoned");
        }
    }
}

/// Builder for [`WalkServer`]: the inner session's configuration plus the
/// serving-layer knobs (queue bound, overload policy, batch window).
#[derive(Clone, Debug)]
pub struct WalkServerBuilder {
    session: SessionBuilder,
    capacity: usize,
    policy: AdmissionPolicy,
    batch_max: usize,
}

impl WalkServerBuilder {
    /// Defaults: a default [`SessionBuilder`], capacity 256,
    /// [`AdmissionPolicy::Block`] (pure backpressure — nothing rejected,
    /// nothing shed), at most 32 commands per serving cycle.
    pub fn new() -> Self {
        Self {
            session: SessionBuilder::new(),
            capacity: 256,
            policy: AdmissionPolicy::default(),
            batch_max: 32,
        }
    }

    /// Replaces the inner session configuration wholesale.
    pub fn session(mut self, session: SessionBuilder) -> Self {
        self.session = session;
        self
    }

    /// Sets the simulated device (forwarded to the session builder).
    pub fn device(mut self, spec: DeviceSpec) -> Self {
        self.session = self.session.device(spec);
        self
    }

    /// Sets the drain worker count (forwarded to the session builder).
    pub fn workers(mut self, workers: usize) -> Self {
        self.session = self.session.workers(workers);
        self
    }

    /// Sets the execution topology (forwarded to the session builder).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.session = self.session.topology(topology);
        self
    }

    /// Registers a walker definition (forwarded to the session builder).
    pub fn register_walker(mut self, def: WalkerDef) -> Self {
        self.session = self.session.register_walker(def);
        self
    }

    /// Bounds the admission queue at `capacity` commands (clamped ≥ 1).
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Sets the overload policy applied when the admission queue is full.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps how many queued commands one serving cycle pulls (clamped
    /// ≥ 1). Smaller windows bound per-cycle latency; larger ones batch
    /// better.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Builds the session, spawns the serving loop and starts accepting
    /// commands.
    pub fn serve(self) -> WalkServer {
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(self.capacity, self.policy),
            paused: Mutex::new(false),
            resume: Condvar::new(),
            stats: Mutex::new(LoopStats::default()),
        });
        let loop_shared = Arc::clone(&shared);
        let session_builder = self.session;
        let batch_max = self.batch_max;
        let worker = std::thread::Builder::new()
            .name("flexi-walk-server".into())
            .spawn(move || serve_loop(session_builder.build(), &loop_shared, batch_max))
            .expect("spawning the serving loop");
        WalkServer {
            shared,
            worker: Some(worker),
        }
    }
}

impl Default for WalkServerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// An always-on walk service: a [`Session`] behind a bounded admission
/// queue, served by a dedicated loop thread.
///
/// See the [module docs](self) for the serving lifecycle, the overload
/// policies and the served-≡-offline determinism guarantee. Cheap to
/// share: submit from any thread holding a `&WalkServer`.
#[derive(Debug)]
pub struct WalkServer {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl WalkServer {
    /// Starts configuring a server.
    pub fn builder() -> WalkServerBuilder {
        WalkServerBuilder::new()
    }

    /// Submits a walk request for serving and returns its ticket.
    ///
    /// Under [`AdmissionPolicy::Block`] this waits for queue space (the
    /// backpressure path); under the other policies it returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the queue is full under
    /// [`AdmissionPolicy::Reject`]; [`ServeError::Closed`] after
    /// [`WalkServer::shutdown`] began.
    pub fn submit(&self, req: WalkRequest) -> Result<WalkTicket, ServeError> {
        let slot = Slot::new();
        let cmd = Command::Walk {
            req,
            admitted: Instant::now(),
            slot: Arc::clone(&slot),
        };
        self.admit(cmd)?;
        Ok(WalkTicket { slot })
    }

    /// Submits an update batch for application and returns its ticket.
    ///
    /// The batch is an **epoch boundary**: walks admitted before it are
    /// served at the pre-update epoch, walks admitted after it at the
    /// post-update epoch. Errors as [`WalkServer::submit`].
    pub fn apply_updates(
        &self,
        graph: &GraphHandle,
        batch: Vec<GraphUpdate>,
    ) -> Result<UpdateTicket, ServeError> {
        let slot = Slot::new();
        let cmd = Command::Update {
            graph: graph.clone(),
            batch,
            admitted: Instant::now(),
            slot: Arc::clone(&slot),
        };
        self.admit(cmd)?;
        Ok(UpdateTicket { slot })
    }

    /// Pushes one command through the admission queue, failing any shed
    /// victims.
    fn admit(&self, cmd: Command) -> Result<(), ServeError> {
        match self.shared.queue.push(cmd) {
            Admission::Admitted { shed } => {
                for victim in shed {
                    victim.fail(ServeError::Shed);
                }
                Ok(())
            }
            Admission::Rejected(_) => Err(ServeError::Rejected),
            Admission::Closed(_) => Err(ServeError::Closed),
        }
    }

    /// Pauses serving: the loop finishes nothing new until
    /// [`WalkServer::resume`]. Admission stays open, so queued commands
    /// accumulate against the capacity bound — this is the maintenance
    /// window, and what makes the overload policies deterministic to
    /// test.
    pub fn pause(&self) {
        *self.shared.paused.lock().expect("pause flag poisoned") = true;
    }

    /// Resumes serving after [`WalkServer::pause`].
    pub fn resume(&self) {
        *self.shared.paused.lock().expect("pause flag poisoned") = false;
        self.shared.resume.notify_all();
    }

    /// Commands currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// The overload policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.shared.queue.policy()
    }

    /// A snapshot of the server's counters: serving-loop stats (published
    /// after every cycle) plus the live admission counters.
    pub fn stats(&self) -> ServerStats {
        let loop_stats = self.shared.stats.lock().expect("server stats poisoned");
        ServerStats {
            session: loop_stats.session.clone(),
            serve_latency: loop_stats.serve_latency.clone(),
            update_latency: loop_stats.update_latency.clone(),
            admission: self.shared.queue.stats(),
            serve_cycles: loop_stats.serve_cycles,
            served: loop_stats.served,
            updates_applied: loop_stats.updates_applied,
        }
    }

    /// Stops admission, serves every already-admitted command, joins the
    /// loop and returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        self.shared.queue.close();
        // A paused loop must wake to observe the close.
        self.resume();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("serving loop panicked");
        }
    }
}

impl Drop for WalkServer {
    fn drop(&mut self) {
        if self.worker.is_some() {
            self.close_and_join();
        }
    }
}

/// The serving loop: pop → (pause gate) → batch → process, until the
/// queue is closed **and** drained, so shutdown never strands admitted
/// work.
fn serve_loop(mut session: Session, shared: &Shared, batch_max: usize) {
    while let Some(first) = shared.queue.pop_wait() {
        // Hold at most the one popped command while paused; everything
        // else keeps queueing against the admission bound.
        shared.pause_gate();
        let mut batch = vec![first];
        batch.extend(shared.queue.drain_ready(batch_max - 1));
        process(&mut session, shared, batch);
    }
}

/// Processes one admission-ordered command batch: walk runs accumulate
/// into the session and drain at every epoch boundary (update command)
/// and at the end of the batch.
fn process(session: &mut Session, shared: &Shared, batch: Vec<Command>) {
    type PendingWalk = (Ticket, Instant, Arc<Slot<Result<RunReport, ServeError>>>);
    let mut pending: Vec<PendingWalk> = Vec::new();
    let mut stats = LoopStats::default();

    let drain_pending =
        |session: &mut Session, pending: &mut Vec<PendingWalk>, stats: &mut LoopStats| {
            if pending.is_empty() {
                return;
            }
            let results = session.drain();
            let done = Instant::now();
            for (ticket, result) in results {
                let Some(pos) = pending.iter().position(|(t, _, _)| *t == ticket) else {
                    continue;
                };
                let (_, admitted, slot) = pending.swap_remove(pos);
                stats.serve_latency.record(done.duration_since(admitted));
                stats.served += 1;
                slot.fulfill(result.map_err(ServeError::Engine));
            }
            debug_assert!(pending.is_empty(), "drain left tickets unresolved");
        };

    for cmd in batch {
        match cmd {
            Command::Walk {
                req,
                admitted,
                slot,
            } => {
                let ticket = session.submit(req);
                pending.push((ticket, admitted, slot));
            }
            Command::Update {
                graph,
                batch,
                admitted,
                slot,
            } => {
                // Epoch boundary: serve everything admitted before the
                // update at the pre-update epoch, then ingest.
                drain_pending(session, &mut pending, &mut stats);
                let outcome = session.apply_updates(&graph, &batch);
                let done = Instant::now();
                if outcome.is_ok() {
                    stats.updates_applied += 1;
                }
                stats.update_latency.record(done.duration_since(admitted));
                slot.fulfill(outcome.map_err(ServeError::Graph));
            }
        }
    }
    drain_pending(session, &mut pending, &mut stats);

    // Publish: fold this cycle's deltas into the shared snapshot.
    let mut published = shared.stats.lock().expect("server stats poisoned");
    published.session = session.stats();
    published.serve_latency.merge(&stats.serve_latency);
    published.update_latency.merge(&stats.update_latency);
    published.serve_cycles += 1;
    published.served += stats.served;
    published.updates_applied += stats.updates_applied;
}
