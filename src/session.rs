//! The session façade: FlexiWalker as a long-lived walk service over
//! live, updatable graphs.
//!
//! [`FlexiWalker::builder`] configures a device, a selection strategy, a
//! [`SamplerRegistry`] and a [`WalkerRegistry`], and produces a
//! [`Session`] — the entry point for heavy query traffic. A session:
//!
//! - **owns its graphs**: [`Session::load_graph`] registers a graph under
//!   an epoch-versioned [`GraphHandle`]; requests reference the handle, so
//!   neither the session nor its requests carry borrow lifetimes;
//! - **serves any registered walker**: the built-ins (`"node2vec"`,
//!   `"metapath"`, `"sopr"`, `"uniform"`) and user definitions
//!   ([`SessionBuilder::register_walker`] — DSL source, pre-built spec or
//!   native implementation) all lower through one compiler pipeline;
//!   [`Session::load_walker`] resolves a name to a [`WalkerHandle`]
//!   (surfacing compile errors typed, up front) and requests may also
//!   address walkers by bare name, resolved at drain time;
//! - **serves walks over live updates**: [`Session::apply_updates`] routes
//!   a batch of [`GraphUpdate`]s through the handle, bumps its epoch, and
//!   *incrementally* refreshes exactly the dirty-node aggregates
//!   (`Aggregates::refresh_nodes`) — an update invalidates precisely the
//!   cached state it must and nothing else;
//! - **caches** lowered walkers (per definition fingerprint),
//!   preprocessed `_MAX`/`_SUM` aggregates (per graph version × walker)
//!   and profiled cost models (per graph version), keyed by epoch-aware
//!   fingerprints.
//!   The graph content digest is computed **once** at load; subsequent
//!   cache keys derive from `(digest, graph id, epoch)`, so drains never
//!   re-hash an unchanged graph;
//! - **batches** walk jobs: [`Session::submit`] enqueues a
//!   [`WalkRequest`] and returns a [`Ticket`]; [`Session::drain`] executes
//!   everything pending. Each query is assigned a global index in the
//!   session's cumulative stream, which seeds its private RNG stream —
//!   with the same seed, one submission of N queries and two submissions
//!   of N/2 produce bit-identical paths;
//! - **parallelises** drains: pending requests are grouped by
//!   `(graph id, epoch, device)` and fanned across
//!   [`SessionBuilder::workers`] host threads, with reports merged back in
//!   submission order — output is bit-identical at every worker count
//!   (see [`crate::executor`]).
//!
//! ## Cache invalidation
//!
//! | cached state | keyed by | weight-only batch | structural batch |
//! |---|---|---|---|
//! | lowered walkers | walker fingerprint | kept | kept |
//! | aggregates | graph version × walker | migrated via dirty-node refresh | migrated via dirty-node refresh |
//! | cost-model profile | graph version | carried to the new epoch | evicted (re-profiled on next drain) |
//! | sampler state (alias/CDF tables) | graph version × sampler × walker fingerprint | patched in O(Δ) | dirty frontier refreshed |
//!
//! [`GraphUpdate`]: flexi_graph::GraphUpdate

use crate::executor::{self, PreparedJob};
use flexi_core::{
    ChurnProfile, CompiledWalker, EngineError, FlexiWalkerEngine, PlanFetch, PreparedState,
    ProfileResult, RunReport, SelectionStrategy, Topology, WalkRequest, WalkerDef, WalkerHandle,
    WalkerRegistry, WorkerPool,
};
use flexi_gpu_sim::DeviceSpec;
use flexi_graph::{
    Csr, GraphError, GraphHandle, GraphSnapshot, GraphUpdate, GraphVersion, UpdateOutcome,
};
use flexi_sampling::{Sampler, SamplerRegistry};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Namespace for the builder entry point: `FlexiWalker::builder()`.
#[derive(Clone, Copy, Debug)]
pub struct FlexiWalker;

impl FlexiWalker {
    /// Starts configuring a walk session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }
}

/// Builder for [`Session`].
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    spec: DeviceSpec,
    strategy: SelectionStrategy,
    registry: SamplerRegistry,
    walkers: WalkerRegistry,
    skip_profile: bool,
    cost_ratio_override: Option<f64>,
    incremental_state: bool,
    churn: ChurnProfile,
    workers: usize,
    topology: Topology,
}

impl SessionBuilder {
    /// A builder with the paper's defaults: simulated A6000, cost-model
    /// selection, the built-in eRVS/eRJS sampler registry, the built-in
    /// walker registry (`"node2vec"`, `"metapath"`, `"sopr"`,
    /// `"uniform"`), one drain worker per host core.
    pub fn new() -> Self {
        Self {
            spec: DeviceSpec::a6000(),
            strategy: SelectionStrategy::CostModel,
            registry: SamplerRegistry::builtin(),
            walkers: WalkerRegistry::builtin(),
            skip_profile: false,
            cost_ratio_override: None,
            incremental_state: false,
            churn: ChurnProfile::default(),
            workers: WorkerPool::available(),
            topology: Topology::Single,
        }
    }

    /// Sets the simulated device.
    pub fn device(mut self, spec: DeviceSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the sampler-selection strategy.
    pub fn strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the sampler registry wholesale.
    pub fn registry(mut self, registry: SamplerRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers an additional (or replacement) sampling strategy.
    pub fn register_sampler(mut self, sampler: Arc<dyn Sampler>) -> Self {
        self.registry.register(sampler);
        self
    }

    /// Replaces the walker registry wholesale.
    pub fn walker_registry(mut self, walkers: WalkerRegistry) -> Self {
        self.walkers = walkers;
        self
    }

    /// Registers an additional (or replacement) walker definition — a DSL
    /// source, a pre-built spec, or a native [`DynamicWalk`]
    /// implementation. Compile errors surface later, typed, through
    /// [`Session::load_walker`] or the drain result of a request that
    /// names the walker.
    ///
    /// [`DynamicWalk`]: flexi_core::DynamicWalk
    pub fn register_walker(mut self, def: WalkerDef) -> Self {
        self.walkers.register(def);
        self
    }

    /// Disables the §5.1 profiling kernels (default cost ratio).
    pub fn skip_profile(mut self, skip: bool) -> Self {
        self.skip_profile = skip;
        self
    }

    /// Pins the cost model's edge-cost ratio instead of profiling it.
    pub fn cost_ratio(mut self, ratio: f64) -> Self {
        self.cost_ratio_override = Some(ratio);
        self
    }

    /// Maintains per-node sampler state (alias tables / CDFs) in the
    /// graph handle's epoch cache and serves eligible drains from it.
    ///
    /// Opt-in: the state path draws from a different RNG sequence than
    /// stateless sampling, so output is bit-identical across workers,
    /// topologies and churn *within* the mode, but not to a stateless
    /// session. Inert for walkers whose weights read walk state and for
    /// time-windowed requests.
    pub fn incremental_state(mut self, on: bool) -> Self {
        self.incremental_state = on;
        self
    }

    /// Amortises an expected update churn into stateful sampler pricing —
    /// [`ChurnProfile::observed`] converts a session's own refresh/step
    /// counters into this profile.
    pub fn churn(mut self, churn: ChurnProfile) -> Self {
        self.churn = churn;
        self
    }

    /// Sets how many host worker threads [`Session::drain`] fans pending
    /// requests across (clamped to at least 1).
    ///
    /// The default is the host's available parallelism; `1` is the fully
    /// sequential path. Drain output is **bit-identical at every worker
    /// count**: requests are prepared sequentially, grouped by
    /// `(graph id, epoch, device)`, executed as pure jobs over pinned
    /// snapshots, and merged back in submission order (see
    /// [`crate::executor`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the execution topology: how each drained request maps onto
    /// simulated devices (device counts are clamped to at least 1).
    ///
    /// - [`Topology::Single`] (default): one device, whole graph.
    /// - [`Topology::MultiDevice`]: the graph is duplicated on every
    ///   device and each request's queries split across them (§6.6).
    /// - [`Topology::OutOfCore`]: the graph is spilled to disk-resident
    ///   blocks and only a bounded byte budget stays memory-resident —
    ///   serves graphs bigger than host memory.
    /// - [`Topology::Partitioned`]: the graph is hash-partitioned over
    ///   the devices — each holds its shard plus the row pointers, so
    ///   graphs that overflow one device still serve — and walkers
    ///   migrate over the configured link (§7.2). Partition plans are
    ///   cached per epoch on the [`GraphHandle`] and migrated
    ///   incrementally by [`Session::apply_updates`].
    ///
    /// Every topology serves the same unified walker path with per-query
    /// Philox streams, so walk output (paths, step counts, sampler
    /// tallies) is **bit-identical across topologies and worker counts**;
    /// only simulated timing, memory and migration accounting differ.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology.normalized();
        self
    }

    /// Finishes configuration. The session is fully owned — no borrow
    /// lifetime: graphs are registered via [`Session::load_graph`] and
    /// travel in requests as [`GraphHandle`]s.
    pub fn build(self) -> Session {
        let mut engine = FlexiWalkerEngine::with_strategy(self.spec, self.strategy)
            .with_registry(self.registry)
            .with_walkers(self.walkers);
        engine.skip_profile = self.skip_profile;
        engine.cost_ratio_override = self.cost_ratio_override;
        engine.incremental_state = self.incremental_state;
        engine.churn = self.churn;
        Session {
            engine,
            walkers: HashMap::new(),
            aggregates: HashMap::new(),
            profiles: HashMap::new(),
            graphs: HashMap::new(),
            pending: Vec::new(),
            next_ticket: 0,
            query_cursor: 0,
            workers: self.workers,
            topology: self.topology,
            stats: SessionStats::default(),
        }
    }
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle identifying one submitted request in [`Session::drain`] output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(usize);

impl Ticket {
    /// Submission index within the session (0-based).
    pub fn id(self) -> usize {
        self.0
    }
}

/// Key of the per-graph caches: a 128-bit fingerprint (two independently
/// salted hashes).
///
/// At epoch 0 this is the *full content digest* computed once at
/// [`Session::load_graph`] — so two handles loaded from identical content
/// share their epoch-0 caches. After an update batch it becomes a cheap
/// mix of `(content digest, graph id, epoch)`: sound because every
/// mutation path bumps the epoch, and O(1) where the old design re-hashed
/// the whole edge list on every drain.
type GraphFp = (u64, u64);

/// Computes the load-time content digest of `g` — the one O(V + E) hashing
/// pass a graph ever pays in a session.
fn content_digest(g: &Csr) -> GraphFp {
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    0x517E_u64.hash(&mut h1);
    0xFACE_u64.hash(&mut h2);
    for h in [&mut h1, &mut h2] {
        g.num_nodes().hash(h);
        g.num_edges().hash(h);
        g.props().bytes_per_weight().hash(h);
        g.has_labels().hash(h);
        g.row_ptr().hash(h);
        g.col_idx().hash(h);
    }
    for e in 0..g.num_edges() {
        let bits = g.prop(e).to_bits();
        bits.hash(&mut h1);
        bits.hash(&mut h2);
    }
    if g.has_labels() {
        for e in 0..g.num_edges() {
            let l = g.label(e);
            l.hash(&mut h1);
            l.hash(&mut h2);
        }
    }
    (h1.finish(), h2.finish())
}

/// Evolves a graph's cache fingerprint to a later epoch without touching
/// the edge list. Unique per `(graph id, epoch)`, which is what keeps the
/// key sound: graph content only changes through `apply_updates`, and
/// every batch bumps the epoch.
fn epoch_fp(content: GraphFp, graph_id: u64, epoch: u64) -> GraphFp {
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    0xE90C_u64.hash(&mut h1);
    0x0C9E_u64.hash(&mut h2);
    for h in [&mut h1, &mut h2] {
        content.0.hash(h);
        content.1.hash(h);
        graph_id.hash(h);
        epoch.hash(h);
    }
    (h1.finish(), h2.finish())
}

/// Session bookkeeping for one registered graph handle.
#[derive(Clone, Copy, Debug)]
struct GraphEntry {
    /// Content digest computed once at registration, never recomputed.
    content: GraphFp,
    /// The epoch the digest was taken at (0 unless the handle saw updates
    /// before registration).
    digest_epoch: u64,
    /// Latest epoch whose cache rows this session holds — the garbage
    /// collector's cursor. Epochs only advance, so once a newer epoch is
    /// served or migrated to, the rows keyed at this one are unreachable
    /// and can be dropped (this also bounds the cache when updates land
    /// on the handle outside the session).
    live_epoch: u64,
}

impl GraphEntry {
    /// The cache key for `epoch`: the raw content digest at the digest
    /// epoch (so identically-loaded graphs share their initial caches),
    /// a cheap `(digest, id, epoch)` mix afterwards.
    fn fp_at(&self, graph_id: u64, epoch: u64) -> GraphFp {
        if epoch == self.digest_epoch {
            self.content
        } else {
            epoch_fp(self.content, graph_id, epoch)
        }
    }
}

/// Counters exposing the session's cache and executor behaviour — what
/// the no-rehash-on-drain, incremental-refresh and parallel-drain
/// guarantees are asserted against in tests and benchmarks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionStats {
    /// Full O(V + E) content digests computed (once per loaded graph).
    pub digests_computed: u64,
    /// Aggregate sets built from scratch.
    pub aggregates_built: u64,
    /// Aggregate sets migrated across an epoch by incremental refresh.
    pub aggregates_refreshed: u64,
    /// Total dirty nodes recomputed by incremental refreshes.
    pub aggregate_nodes_refreshed: u64,
    /// Profiling kernel runs.
    pub profiles_run: u64,
    /// Profiles carried across a weight-only epoch without re-running.
    pub profiles_carried: u64,
    /// Drains fanned across more than one worker slot (the slot split
    /// itself is scheduling-dependent — a fast worker may still claim
    /// every job).
    pub parallel_drains: u64,
    /// `(graph id, epoch, device)` batch groups formed across all drains.
    pub drain_groups: u64,
    /// Shard launches executed per worker slot, cumulative across drains.
    /// The split between slots is scheduling-dependent; the sum always
    /// equals the number of launches (= drained requests under
    /// [`Topology::Single`]).
    pub worker_requests: Vec<u64>,
    /// Drains executed under a multi-device topology.
    pub sharded_drains: u64,
    /// Shard sub-launches fanned across the pool, cumulative.
    pub shard_launches: u64,
    /// Walker migrations across the simulated interconnect, cumulative
    /// (partitioned topologies only).
    pub migrations: u64,
    /// Simulated seconds those migrations spent on the link, cumulative.
    pub link_seconds: f64,
    /// Blocks written to the out-of-core spill file, cumulative: the
    /// initial spill when an epoch's block runtime is first built, plus
    /// every dirty block re-spilled by [`Session::apply_updates`]
    /// migrating cached runtimes across epochs.
    pub block_spills: u64,
    /// Blocks read back from the spill file by out-of-core drains
    /// (resident-cache misses).
    pub block_loads: u64,
    /// Out-of-core block activations served from the resident cache.
    pub block_hits: u64,
    /// Blocks evicted from the resident cache to stay under its byte
    /// budget.
    pub block_evictions: u64,
    /// Partition plans computed from scratch — once per
    /// `(graph, shard count)` pair per *structural history*, not per
    /// drain.
    pub plan_builds: u64,
    /// Drain preparations served by a cached partition plan.
    pub plan_hits: u64,
    /// Cached plans migrated to a new epoch by incremental dirty-node
    /// refresh (one per cached plan per structural batch; weight-only
    /// batches carry plans without counting here).
    pub plan_refreshes: u64,
    /// Ingest epochs applied through [`Session::apply_updates`]
    /// (non-empty batches only; a no-op batch advances nothing).
    pub epochs_applied: u64,
    /// Cached time-window masks migrated across those epochs (recomputed
    /// on structural batches, carried on weight-only ones).
    pub masks_migrated: u64,
    /// Sampler-state artifacts built from scratch by drains (cold
    /// epoch-cache misses on the incremental-state path).
    pub sampler_state_builds: u64,
    /// Drain launches served by a cached sampler-state artifact.
    pub sampler_state_hits: u64,
    /// Cached sampler-state artifacts patched to a new epoch by
    /// [`Session::apply_updates`] — O(dirty frontier) per batch, on both
    /// weight-only and structural batches (weights are what the tables
    /// encode). Under weight-only churn these dominate
    /// [`SessionStats::sampler_state_builds`].
    pub sampler_state_patches: u64,
    /// Per-request drain latency: every drained request records one
    /// sample — the drain's sequential prepare time plus *that request's
    /// own* pipelined completion offset (prepare start to its merge
    /// landing), so a 100-request drain carries 100 samples and requests
    /// merged early report lower latency than the drain's stragglers. The
    /// serving layer's end-to-end admission-to-response distribution
    /// lives in `ServerStats::serve_latency`; this histogram isolates
    /// the drain-side component.
    pub latency: flexi_core::LatencyHistogram,
    /// Host wall seconds per executor pipeline stage, accumulated across
    /// drains: prepare (sequential cache resolution), launch, merge and
    /// replay busy time, plus the unhidden merge tail (see
    /// [`flexi_core::StageTiming`]).
    pub stages: flexi_core::StageTiming,
}

impl std::fmt::Display for SessionStats {
    /// A compact human-readable summary — the one formatter every bench
    /// and example can share instead of hand-picking counters.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "caches: {} digest(s), {} aggregate build(s), {} refresh(es) over {} dirty node(s), \
             {} profile run(s) ({} carried)",
            self.digests_computed,
            self.aggregates_built,
            self.aggregates_refreshed,
            self.aggregate_nodes_refreshed,
            self.profiles_run,
            self.profiles_carried,
        )?;
        writeln!(
            f,
            "drains: {} group(s), {} parallel, {} sharded ({} shard launches, {} migrations, \
             {:.3} link-s), {} epoch(s), plans: {} built / {} hit / {} refreshed, \
             {} mask(s) migrated",
            self.drain_groups,
            self.parallel_drains,
            self.sharded_drains,
            self.shard_launches,
            self.migrations,
            self.link_seconds,
            self.epochs_applied,
            self.plan_builds,
            self.plan_hits,
            self.plan_refreshes,
            self.masks_migrated,
        )?;
        writeln!(
            f,
            "sampler state: {} built / {} hit / {} patched",
            self.sampler_state_builds, self.sampler_state_hits, self.sampler_state_patches,
        )?;
        writeln!(
            f,
            "blocks: {} spilled / {} loaded / {} hit / {} evicted",
            self.block_spills, self.block_loads, self.block_hits, self.block_evictions,
        )?;
        writeln!(f, "stages: {}", self.stages)?;
        write!(
            f,
            "drain latency: {}  |  per-worker requests: ",
            self.latency
        )?;
        if self.worker_requests.is_empty() {
            write!(f, "-")
        } else {
            let reqs: Vec<String> = self.worker_requests.iter().map(u64::to_string).collect();
            write!(f, "[{}]", reqs.join(", "))
        }
    }
}

/// A long-lived walk service over one engine configuration.
///
/// See the [module docs](self) for the graph-handle lifecycle
/// (`load_graph` → `submit` → `apply_updates` → `drain`) and the caching
/// and batching guarantees.
pub struct Session {
    engine: FlexiWalkerEngine,
    /// Lowered walkers per definition fingerprint — one compile per
    /// distinct definition, shared by every handle and named request.
    walkers: HashMap<u64, Arc<CompiledWalker>>,
    /// Preprocessed aggregates per (graph fingerprint, walker) pair.
    aggregates: HashMap<(GraphFp, u64), Arc<flexi_core::Aggregates>>,
    /// Profiled cost models per (graph fingerprint, bytes-per-weight, seed).
    profiles: HashMap<(GraphFp, usize, u64), ProfileResult>,
    /// Registered graphs by handle id.
    graphs: HashMap<u64, GraphEntry>,
    pending: Vec<(Ticket, WalkRequest)>,
    next_ticket: usize,
    query_cursor: u64,
    /// Host threads [`Session::drain`] fans requests across.
    workers: usize,
    /// How drained requests map onto simulated devices.
    topology: Topology,
    stats: SessionStats,
}

impl Session {
    /// The underlying engine (registry, strategy, device).
    pub fn engine(&self) -> &FlexiWalkerEngine {
        &self.engine
    }

    /// Number of submitted-but-undrained requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Cache- and executor-behaviour counters.
    pub fn stats(&self) -> SessionStats {
        self.stats.clone()
    }

    /// Host worker threads [`Session::drain`] fans requests across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The execution topology drained requests map onto.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of resident aggregate sets — bounded by live graph versions
    /// × workloads (superseded epochs are garbage-collected).
    pub fn cached_aggregates(&self) -> usize {
        self.aggregates.len()
    }

    /// Number of resident cost-model profiles.
    pub fn cached_profiles(&self) -> usize {
        self.profiles.len()
    }

    /// The registered walker definitions.
    pub fn walkers(&self) -> &WalkerRegistry {
        self.engine.walkers()
    }

    /// Number of distinct lowered walker definitions resident in the
    /// session cache.
    pub fn cached_walkers(&self) -> usize {
        self.walkers.len()
    }

    /// Resolves a registered walker name into a ready-to-use
    /// [`WalkerHandle`], lowering the definition through the compiler
    /// pipeline (once per distinct definition — repeat loads share the
    /// cached artifact).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownWalker`] for unregistered names;
    /// [`EngineError::WalkerCompile`] when the definition fails to lower
    /// (malformed DSL, unresolvable references).
    pub fn load_walker(&mut self, name: &str) -> Result<WalkerHandle, EngineError> {
        let def = self
            .engine
            .walkers()
            .get(name)
            .ok_or_else(|| EngineError::UnknownWalker {
                name: name.to_string(),
            })?
            .clone();
        self.lower_cached(&def).map(WalkerHandle::resolved)
    }

    /// Lowers a definition through the session cache (one compile per
    /// distinct definition fingerprint).
    fn lower_cached(&mut self, def: &WalkerDef) -> Result<Arc<CompiledWalker>, EngineError> {
        let fp = def.fingerprint();
        if let Some(cw) = self.walkers.get(&fp) {
            return Ok(Arc::clone(cw));
        }
        let cw = Arc::new(def.lower()?);
        self.walkers.insert(fp, Arc::clone(&cw));
        Ok(cw)
    }

    /// Resolves a request's walker handle: resolved handles pass through,
    /// named ones go through the registry + lowering cache.
    fn resolve_walker(
        &mut self,
        handle: &WalkerHandle,
    ) -> Result<Arc<CompiledWalker>, EngineError> {
        if let Some(cw) = handle.compiled() {
            return Ok(Arc::clone(cw));
        }
        let name = handle.name().to_string();
        let def = self
            .engine
            .walkers()
            .get(&name)
            .ok_or(EngineError::UnknownWalker { name })?
            .clone();
        self.lower_cached(&def)
    }

    /// Registers a graph with the session and returns its handle.
    ///
    /// Accepts a bare [`Csr`] / `Arc<Csr>` (wrapped in a fresh handle) or
    /// an existing [`GraphHandle`]. The full content digest — the cache
    /// key seed — is computed here, exactly once; drains and updates never
    /// re-hash the graph.
    pub fn load_graph(&mut self, graph: impl Into<GraphHandle>) -> GraphHandle {
        let handle = graph.into();
        self.entry_for(&handle);
        handle
    }

    /// The live version of a graph registered with this session.
    pub fn graph_version(&self, handle: &GraphHandle) -> Option<GraphVersion> {
        self.graphs.get(&handle.id()).map(|_| handle.version())
    }

    /// Applies one update batch to a registered graph and migrates the
    /// session's caches to the new epoch.
    ///
    /// Weight-only and structural batches both refresh cached aggregates
    /// *incrementally* — only the dirty nodes reported by the handle are
    /// recomputed. Cost-model profiles survive weight-only batches (the
    /// profiled memory-cost ratio does not depend on weight values) but
    /// are evicted by structural ones, whose degree redistribution they
    /// measured. An unregistered handle is registered first.
    ///
    /// # Errors
    ///
    /// As [`GraphHandle::apply_updates`]; on error the graph, its epoch
    /// and all caches are unchanged.
    pub fn apply_updates(
        &mut self,
        handle: &GraphHandle,
        batch: &[GraphUpdate],
    ) -> Result<UpdateOutcome, GraphError> {
        let entry = *self.entry_for(handle);
        let id = handle.id();

        // The profile carry below is only sound while the edge-property
        // representation (and so every profile key's bytes-per-weight
        // component) is unchanged — a SetWeight batch on an unweighted or
        // INT8 graph promotes the props to F32.
        let pre_weight_bytes = handle.graph().props().bytes_per_weight();

        let outcome = handle.apply_updates(batch)?;
        // Structural batches migrate the handle's cached partition plans
        // by incremental dirty-node refresh (inside the handle, under its
        // write lock); surface the count so plan-reuse guarantees are
        // testable: refreshes track structural epochs, never drains.
        self.stats.plan_refreshes += outcome.plans_migrated as u64;
        self.stats.masks_migrated += outcome.masks_migrated as u64;
        // Cached block runtimes re-spill their dirty blocks on every
        // non-empty batch — the spill encodes weights, so weight-only
        // batches migrate it too.
        self.stats.block_spills += outcome.blocks_migrated as u64;
        // Sampler-state artifacts migrate on *every* non-empty batch —
        // weight-only included, since weights are exactly what the tables
        // encode — by patching only the dirty frontier.
        self.stats.sampler_state_patches += outcome.sampler_states_migrated as u64;
        if outcome.dirty_nodes.is_empty() && !outcome.structural {
            // Empty batch: nothing changed, nothing to migrate.
            return Ok(outcome);
        }
        self.stats.epochs_applied += 1;
        let new_epoch = outcome.version.epoch;
        let old_epoch = new_epoch - 1;
        let old_fp = entry.fp_at(id, old_epoch);
        let new_fp = entry.fp_at(id, new_epoch);

        // Out-of-band epoch advances (handle updated without the session)
        // may have left rows at an even older epoch; drop them first.
        if entry.live_epoch < old_epoch {
            self.evict_epoch(id, &entry, entry.live_epoch);
        }

        // Migrate aggregates by incremental dirty-node refresh, against
        // the exact post-batch graph the outcome pins.
        let agg_keys: Vec<(GraphFp, u64)> = self
            .aggregates
            .keys()
            .filter(|(fp, _)| *fp == old_fp)
            .copied()
            .collect();
        for (fp, wfp) in agg_keys {
            let mut refreshed = (*self.aggregates[&(fp, wfp)]).clone();
            let nodes = refreshed.refresh_nodes(&outcome.graph, &outcome.dirty_nodes);
            self.stats.aggregates_refreshed += 1;
            self.stats.aggregate_nodes_refreshed += nodes as u64;
            self.aggregates.insert((new_fp, wfp), Arc::new(refreshed));
        }

        // Profiles: carry across weight-only epochs (profiling reads
        // degrees and weight *width*, not values), evict on structural
        // batches or a weight-representation change.
        let repr_unchanged = outcome.graph.props().bytes_per_weight() == pre_weight_bytes;
        if !outcome.structural && repr_unchanged {
            let prof_keys: Vec<(GraphFp, usize, u64)> = self
                .profiles
                .keys()
                .filter(|(fp, _, _)| *fp == old_fp)
                .copied()
                .collect();
            for (fp, bytes, seed) in prof_keys {
                let p = self.profiles[&(fp, bytes, seed)];
                self.profiles.insert((new_fp, bytes, seed), p);
                self.stats.profiles_carried += 1;
            }
        }

        self.evict_epoch(id, &entry, old_epoch);
        self.graphs
            .get_mut(&id)
            .expect("registered above")
            .live_epoch = new_epoch;
        Ok(outcome)
    }

    /// Drops the cache rows keyed at one superseded epoch of `id`.
    ///
    /// Epoch-mixed keys belong to this graph alone; the raw digest key
    /// may be shared by another handle loaded from identical content, in
    /// which case it stays.
    fn evict_epoch(&mut self, id: u64, entry: &GraphEntry, epoch: u64) {
        let fp = entry.fp_at(id, epoch);
        let digest_key = epoch == entry.digest_epoch;
        let shared = digest_key
            && self
                .graphs
                .iter()
                .any(|(gid, e)| *gid != id && e.content == fp);
        if !shared {
            self.aggregates.retain(|(k, _), _| *k != fp);
            self.profiles.retain(|(k, _, _), _| *k != fp);
        }
    }

    /// Enqueues a walk job and returns its ticket.
    ///
    /// The request's [`WalkRequest::query_offset`] is overwritten with the
    /// session's cumulative query cursor — that is what makes results
    /// independent of how a query set is split across submissions. The
    /// request's graph handle is registered if it was not loaded through
    /// this session.
    pub fn submit(&mut self, req: WalkRequest) -> Ticket {
        self.entry_for(&req.graph);
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let offset = self.query_cursor;
        self.query_cursor += req.queries.len() as u64;
        self.pending.push((ticket, req.query_offset(offset)));
        ticket
    }

    /// Executes every pending request and returns the reports in
    /// submission order.
    ///
    /// Each request resolves its graph handle at drain time — one pinned
    /// snapshot per graph per drain — so a drain after
    /// [`Session::apply_updates`] walks the updated topology (served from
    /// the incrementally refreshed caches). Requests are prepared
    /// sequentially against the session caches, then fanned across the
    /// configured [`SessionBuilder::workers`] grouped by
    /// `(graph id, epoch, device)`; per-query Philox streams and the
    /// submission-ordered merge make the output **bit-identical at every
    /// worker count** (see [`crate::executor`]).
    pub fn drain(&mut self) -> Vec<(Ticket, Result<RunReport, EngineError>)> {
        let pending = std::mem::take(&mut self.pending);
        if pending.is_empty() {
            return Vec::new();
        }
        let started = std::time::Instant::now();
        // Phase 1 (sequential): pin snapshots and resolve caches.
        let mut snapshots: HashMap<u64, GraphSnapshot> = HashMap::new();
        let jobs: Vec<PreparedJob> = pending
            .into_iter()
            .map(|(ticket, req)| self.prepare_job(ticket, req, &mut snapshots))
            .collect();
        let prepare_seconds = started.elapsed().as_secs_f64();
        // Phase 2 (pipelined): pure engine runs — one launch per topology
        // shard per request — each request merging the moment its last
        // shard returns, gathered in submission order.
        let run = executor::execute(&self.engine, jobs, self.workers, self.topology);
        // One latency sample per drained ticket: the shared prepare pass
        // plus that request's own pipelined completion offset.
        let drain_seconds = started.elapsed().as_secs_f64();
        for i in 0..run.results.len() {
            let completed = run
                .completion_seconds
                .get(i)
                .map_or(drain_seconds, |c| prepare_seconds + c);
            self.stats.latency.record_seconds(completed);
        }
        let mut stages = run.stages;
        stages.prepare_seconds = prepare_seconds;
        self.stats.stages.add(&stages);
        self.stats.drain_groups += run.groups as u64;
        if run.per_worker.len() > 1 {
            self.stats.parallel_drains += 1;
        }
        if !matches!(self.topology, Topology::Single) {
            self.stats.sharded_drains += 1;
        }
        self.stats.shard_launches += run.shard_launches;
        self.stats.migrations += run.migrations;
        self.stats.link_seconds += run.link_seconds;
        self.stats.block_loads += run.block_loads;
        self.stats.block_hits += run.block_hits;
        self.stats.block_evictions += run.block_evictions;
        if self.stats.worker_requests.len() < run.per_worker.len() {
            self.stats.worker_requests.resize(run.per_worker.len(), 0);
        }
        for (slot, n) in run.per_worker.iter().enumerate() {
            self.stats.worker_requests[slot] += n;
        }
        for report in run.results.iter().filter_map(|(_, r)| r.as_ref().ok()) {
            self.stats.sampler_state_builds += report.sampler_state_builds;
            self.stats.sampler_state_hits += report.sampler_state_hits;
        }
        run.results
    }

    /// Convenience: submit one job and drain immediately.
    ///
    /// # Errors
    ///
    /// As [`flexi_core::WalkEngine::run`]. Any previously pending submissions are
    /// executed first and their reports discarded — drain explicitly when
    /// batching.
    pub fn run(&mut self, req: WalkRequest) -> Result<RunReport, EngineError> {
        let ticket = self.submit(req);
        self.drain()
            .into_iter()
            .find(|(t, _)| *t == ticket)
            .expect("drained batch contains the submitted ticket")
            .1
    }

    /// Returns the entry for `handle`, registering it (one content digest,
    /// the only O(E) hashing pass the graph ever pays) on first sight.
    ///
    /// Cache keys derive deterministically from the entry and an epoch,
    /// so updates applied to the handle outside the session need no
    /// re-sync: unseen epochs simply key fresh cache rows, which rebuild
    /// from scratch on their first drain.
    fn entry_for(&mut self, handle: &GraphHandle) -> &GraphEntry {
        let id = handle.id();
        self.graphs.entry(id).or_insert_with(|| {
            self.stats.digests_computed += 1;
            let snap = handle.snapshot();
            GraphEntry {
                content: content_digest(&snap.graph),
                digest_epoch: snap.version.epoch,
                live_epoch: snap.version.epoch,
            }
        })
    }

    /// Resolves one request through the caches into a [`PreparedJob`] —
    /// the sequential half of a drain. The returned job carries everything
    /// the engine needs, so its execution no longer touches the session.
    fn prepare_job(
        &mut self,
        ticket: Ticket,
        req: WalkRequest,
        snapshots: &mut HashMap<u64, GraphSnapshot>,
    ) -> PreparedJob {
        // Pin the snapshot first, then key the caches for its epoch: the
        // walk must run over exactly the version the prepared state
        // describes. One snapshot per graph per drain — every request in a
        // batch group shares it.
        let id = req.graph.id();
        let snap = snapshots
            .entry(id)
            .or_insert_with(|| req.snapshot())
            .clone();
        let entry = *self.entry_for(&req.graph);
        let gfp = entry.fp_at(id, snap.version.epoch);
        // Serving a newer epoch than the GC cursor means the handle was
        // updated outside the session: the old epoch's rows are now
        // unreachable (epochs only advance) — drop them so out-of-band
        // update streams cannot grow the caches without bound.
        if entry.live_epoch < snap.version.epoch {
            self.evict_epoch(id, &entry, entry.live_epoch);
            self.graphs
                .get_mut(&id)
                .expect("registered above")
                .live_epoch = snap.version.epoch;
        }
        // Partitioned topologies resolve the epoch's partition plan here,
        // from the handle's plan cache — a from-scratch partitioning runs
        // once per (graph, shard count) per structural history, never per
        // drain (apply_updates migrates cached plans incrementally).
        let plan = self.topology.is_partitioned().then(|| {
            let (plan, fetch) = req.graph.partition_plan(&snap, self.topology.devices());
            match fetch {
                PlanFetch::Cached => self.stats.plan_hits += 1,
                PlanFetch::Built => self.stats.plan_builds += 1,
            }
            plan
        });
        // Out-of-core topologies resolve the epoch's block runtime (spill
        // + resident cache) the same way: the spill runs once per (graph,
        // geometry) per structural history — apply_updates re-spills only
        // dirty blocks — and the cache's residency survives across drains.
        let blocks = if let Topology::OutOfCore {
            resident_budget,
            block_bytes,
        } = self.topology
        {
            match req.graph.block_runtime(&snap, block_bytes, resident_budget) {
                Ok((rt, fetch)) => {
                    if fetch == PlanFetch::Built {
                        self.stats.block_spills += rt.blocks() as u64;
                    }
                    Some(rt)
                }
                Err(e) => {
                    // Spilling failed (disk full, unwritable tmp): the job
                    // reports the typed error instead of running.
                    return PreparedJob {
                        ticket,
                        req,
                        snap,
                        prepared: Err(EngineError::Io(e.to_string())),
                        plan,
                        blocks: None,
                        preprocess_hit: true,
                        profile_hit: true,
                    };
                }
            }
        } else {
            None
        };
        // Resolve the walker through the registry + lowering cache; a
        // failure (unknown name, compile error) becomes the job's typed
        // drain result instead of a panic.
        let walker = match self.resolve_walker(&req.walker) {
            Ok(cw) => cw,
            Err(e) => {
                return PreparedJob {
                    ticket,
                    req,
                    snap,
                    prepared: Err(e),
                    plan,
                    blocks,
                    preprocess_hit: true,
                    profile_hit: true,
                }
            }
        };
        // The job's request carries the resolved handle so the engine run
        // never consults the registry again.
        let req = req.with_walker(WalkerHandle::resolved(Arc::clone(&walker)));
        let wfp = walker.fingerprint();
        let artifacts = walker.artifacts().clone();

        let mut preprocess_hit = true;
        let aggregates = match self.aggregates.get(&(gfp, wfp)) {
            Some(agg) => Arc::clone(agg),
            None => {
                preprocess_hit = false;
                self.stats.aggregates_built += 1;
                let agg = Arc::new(self.engine.aggregates_for(&snap.graph, &artifacts));
                self.aggregates.insert((gfp, wfp), Arc::clone(&agg));
                agg
            }
        };

        let profile_key = (
            gfp,
            walker.walk_dyn().bytes_per_weight(&snap.graph),
            req.config.seed,
        );
        let mut profile_hit = true;
        let profile = match self.profiles.get(&profile_key) {
            Some(p) => Some(*p),
            None => {
                let fresh =
                    self.engine
                        .profile_for(&snap.graph, walker.walk_dyn(), req.config.seed);
                if let Some(p) = fresh {
                    profile_hit = false;
                    self.stats.profiles_run += 1;
                    self.profiles.insert(profile_key, p);
                }
                fresh
            }
        };

        PreparedJob {
            ticket,
            req,
            snap,
            prepared: Ok(PreparedState {
                artifacts,
                aggregates,
                profile,
            }),
            plan,
            blocks,
            preprocess_hit,
            profile_hit,
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.engine)
            .field("graphs", &self.graphs.len())
            .field("pending", &self.pending.len())
            .field("cached_walkers", &self.walkers.len())
            .field("cached_aggregates", &self.aggregates.len())
            .field("cached_profiles", &self.profiles.len())
            .field("workers", &self.workers)
            .field("topology", &self.topology)
            .field("stats", &self.stats)
            .finish()
    }
}
