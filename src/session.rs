//! The session façade: FlexiWalker as a long-lived walk service.
//!
//! [`FlexiWalker::builder`] configures a device, a selection strategy and a
//! [`SamplerRegistry`], and produces a [`Session`] — the entry point for
//! heavy query traffic. A session:
//!
//! - **caches** compiled estimators (per workload), preprocessed
//!   `_MAX`/`_SUM` aggregates (per graph × workload) and profiled cost
//!   models (per graph) across submissions, so only the first request over
//!   a `(graph, workload)` pair pays the Table-3 overheads;
//! - **batches** walk jobs: [`Session::submit`] enqueues a
//!   [`WalkRequest`] and returns a [`Ticket`]; [`Session::drain`] executes
//!   everything pending. Each query is assigned a global index in the
//!   session's cumulative stream, which seeds its private RNG stream —
//!   with the same seed, one submission of N queries and two submissions
//!   of N/2 produce bit-identical paths.

use flexi_core::{
    CompiledArtifacts, EngineError, FlexiWalkerEngine, PreparedState, ProfileResult, RunReport,
    SelectionStrategy, WalkRequest,
};
use flexi_gpu_sim::DeviceSpec;
use flexi_graph::Csr;
use flexi_sampling::{Sampler, SamplerRegistry};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Namespace for the builder entry point: `FlexiWalker::builder()`.
#[derive(Clone, Copy, Debug)]
pub struct FlexiWalker;

impl FlexiWalker {
    /// Starts configuring a walk session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }
}

/// Builder for [`Session`].
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    spec: DeviceSpec,
    strategy: SelectionStrategy,
    registry: SamplerRegistry,
    skip_profile: bool,
    cost_ratio_override: Option<f64>,
}

impl SessionBuilder {
    /// A builder with the paper's defaults: simulated A6000, cost-model
    /// selection, the built-in eRVS/eRJS registry.
    pub fn new() -> Self {
        Self {
            spec: DeviceSpec::a6000(),
            strategy: SelectionStrategy::CostModel,
            registry: SamplerRegistry::builtin(),
            skip_profile: false,
            cost_ratio_override: None,
        }
    }

    /// Sets the simulated device.
    pub fn device(mut self, spec: DeviceSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the sampler-selection strategy.
    pub fn strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the sampler registry wholesale.
    pub fn registry(mut self, registry: SamplerRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers an additional (or replacement) sampling strategy.
    pub fn register_sampler(mut self, sampler: Arc<dyn Sampler>) -> Self {
        self.registry.register(sampler);
        self
    }

    /// Disables the §5.1 profiling kernels (default cost ratio).
    pub fn skip_profile(mut self, skip: bool) -> Self {
        self.skip_profile = skip;
        self
    }

    /// Pins the cost model's edge-cost ratio instead of profiling it.
    pub fn cost_ratio(mut self, ratio: f64) -> Self {
        self.cost_ratio_override = Some(ratio);
        self
    }

    /// Finishes configuration.
    ///
    /// The `'job` lifetime bounds the graph/workload/query borrows of the
    /// requests this session will accept; it is inferred at the first
    /// [`Session::submit`].
    pub fn build<'job>(self) -> Session<'job> {
        let mut engine =
            FlexiWalkerEngine::with_strategy(self.spec, self.strategy).with_registry(self.registry);
        engine.skip_profile = self.skip_profile;
        engine.cost_ratio_override = self.cost_ratio_override;
        Session {
            engine,
            compiled: HashMap::new(),
            aggregates: HashMap::new(),
            profiles: HashMap::new(),
            pending: Vec::new(),
            next_ticket: 0,
            query_cursor: 0,
        }
    }
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle identifying one submitted request in [`Session::drain`] output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(usize);

impl Ticket {
    /// Submission index within the session (0-based).
    pub fn id(self) -> usize {
        self.0
    }
}

/// Key of the per-graph caches: a 128-bit *full* content digest (two
/// independently salted passes over every array the walk reads).
type GraphFp = (u64, u64);

/// Computes the cache key for `g`.
///
/// Full content rather than a pointer or a sample, so the cache survives
/// graph clones, cannot alias a freed allocation, and two graphs that
/// differ in any edge, weight or label get different keys — a sampled or
/// identity-based key could silently serve stale `_MAX`/`_SUM` aggregates
/// and break the eRJS bound's soundness. The 128-bit digest makes an
/// accidental collision astronomically unlikely (this is an in-process
/// cache, not an adversarial boundary). Cost is one O(V + E) pass,
/// comparable to the preprocessing pass it guards and far below a walk;
/// [`Session::drain`] memoizes it per batch so multi-request drains over
/// the same graph hash once. (Memoizing *across* drains by pointer
/// identity would be unsound: `DynamicGraph` mutates weights in place
/// between borrows without changing addresses.)
fn graph_fingerprint(g: &Csr) -> GraphFp {
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    0x517E_u64.hash(&mut h1);
    0xFACE_u64.hash(&mut h2);
    for h in [&mut h1, &mut h2] {
        g.num_nodes().hash(h);
        g.num_edges().hash(h);
        g.props().bytes_per_weight().hash(h);
        g.has_labels().hash(h);
        g.row_ptr().hash(h);
        g.col_idx().hash(h);
    }
    for e in 0..g.num_edges() {
        let bits = g.prop(e).to_bits();
        bits.hash(&mut h1);
        bits.hash(&mut h2);
    }
    if g.has_labels() {
        for e in 0..g.num_edges() {
            let l = g.label(e);
            l.hash(&mut h1);
            l.hash(&mut h2);
        }
    }
    (h1.finish(), h2.finish())
}

/// Per-drain fingerprint memo: within one batch every request holds a live
/// shared borrow of its graph, so no in-place mutation can occur between
/// them and buffer identity is a sound memo key.
type FingerprintMemo = HashMap<(usize, usize, usize), GraphFp>;

fn memoized_fingerprint(memo: &mut FingerprintMemo, g: &Csr) -> GraphFp {
    let identity = (
        g.row_ptr().as_ptr() as usize,
        g.col_idx().as_ptr() as usize,
        g.num_edges(),
    );
    *memo.entry(identity).or_insert_with(|| graph_fingerprint(g))
}

/// Fingerprint of a workload's compiled identity: its DSL source and
/// hyperparameters.
fn workload_fingerprint(w: &dyn flexi_core::DynamicWalk) -> u64 {
    let spec = w.spec();
    let mut h = DefaultHasher::new();
    spec.source.hash(&mut h);
    for (name, value) in &spec.hyperparams {
        name.hash(&mut h);
        value.to_bits().hash(&mut h);
    }
    h.finish()
}

/// A long-lived walk service over one engine configuration.
///
/// See the [module docs](self) for the caching and batching guarantees.
pub struct Session<'job> {
    engine: FlexiWalkerEngine,
    /// Compiled estimators per workload fingerprint.
    compiled: HashMap<u64, CompiledArtifacts>,
    /// Preprocessed aggregates per (graph, workload) fingerprint pair.
    aggregates: HashMap<(GraphFp, u64), Arc<flexi_core::Aggregates>>,
    /// Profiled cost models per (graph, bytes-per-weight, seed).
    profiles: HashMap<(GraphFp, usize, u64), ProfileResult>,
    pending: Vec<(Ticket, WalkRequest<'job>)>,
    next_ticket: usize,
    query_cursor: u64,
}

impl<'job> Session<'job> {
    /// The underlying engine (registry, strategy, device).
    pub fn engine(&self) -> &FlexiWalkerEngine {
        &self.engine
    }

    /// Number of submitted-but-undrained requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Enqueues a walk job and returns its ticket.
    ///
    /// The request's [`WalkRequest::query_offset`] is overwritten with the
    /// session's cumulative query cursor — that is what makes results
    /// independent of how a query set is split across submissions.
    pub fn submit(&mut self, req: WalkRequest<'job>) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let offset = self.query_cursor;
        self.query_cursor += req.queries.len() as u64;
        self.pending.push((ticket, req.query_offset(offset)));
        ticket
    }

    /// Executes every pending request, in submission order.
    pub fn drain(&mut self) -> Vec<(Ticket, Result<RunReport, EngineError>)> {
        let pending = std::mem::take(&mut self.pending);
        let mut memo = FingerprintMemo::new();
        pending
            .into_iter()
            .map(|(ticket, req)| {
                let outcome = self.execute(&req, &mut memo);
                (ticket, outcome)
            })
            .collect()
    }

    /// Convenience: submit one job and drain immediately.
    ///
    /// # Errors
    ///
    /// As [`flexi_core::WalkEngine::run`]. Any previously pending submissions are
    /// executed first and their reports discarded — drain explicitly when
    /// batching.
    pub fn run(&mut self, req: WalkRequest<'job>) -> Result<RunReport, EngineError> {
        let ticket = self.submit(req);
        self.drain()
            .into_iter()
            .find(|(t, _)| *t == ticket)
            .expect("drained batch contains the submitted ticket")
            .1
    }

    /// Runs one request through the caches.
    fn execute(
        &mut self,
        req: &WalkRequest<'_>,
        memo: &mut FingerprintMemo,
    ) -> Result<RunReport, EngineError> {
        let gfp = memoized_fingerprint(memo, req.graph);
        let wfp = workload_fingerprint(req.workload);

        let artifacts = self
            .compiled
            .entry(wfp)
            .or_insert_with(|| flexi_core::compile_workload(req.workload))
            .clone();

        let mut preprocess_hit = true;
        let aggregates = match self.aggregates.get(&(gfp, wfp)) {
            Some(agg) => Arc::clone(agg),
            None => {
                preprocess_hit = false;
                let agg = Arc::new(self.engine.aggregates_for(req.graph, &artifacts));
                self.aggregates.insert((gfp, wfp), Arc::clone(&agg));
                agg
            }
        };

        let profile_key = (
            gfp,
            req.workload.bytes_per_weight(req.graph),
            req.config.seed,
        );
        let mut profile_hit = true;
        let profile = match self.profiles.get(&profile_key) {
            Some(p) => Some(*p),
            None => {
                let fresh = self
                    .engine
                    .profile_for(req.graph, req.workload, req.config.seed);
                if let Some(p) = fresh {
                    profile_hit = false;
                    self.profiles.insert(profile_key, p);
                }
                fresh
            }
        };

        let prepared = PreparedState {
            artifacts,
            aggregates,
            profile,
        };
        let mut report = self.engine.run_with(req, &prepared)?;
        // Cached preparation costs nothing at run time; only the first
        // request over a (graph, workload) pair reports Table-3 overheads.
        if preprocess_hit {
            report.preprocess_seconds = 0.0;
        }
        if profile_hit {
            report.profile_seconds = 0.0;
        }
        Ok(report)
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.engine)
            .field("pending", &self.pending.len())
            .field("cached_workloads", &self.compiled.len())
            .field("cached_aggregates", &self.aggregates.len())
            .field("cached_profiles", &self.profiles.len())
            .finish()
    }
}
