//! Serving determinism and admission control: a request served by the
//! always-on [`WalkServer`] is **bit-identical** to the same request
//! drained offline through a [`Session`] at the same epoch — across
//! worker counts, topologies and mid-stream update batches — and the
//! bounded admission queue degrades deterministically under each
//! overload policy.

use flexiwalker::prelude::*;
use std::time::{Duration, Instant};

/// Deterministic per-seed script randomness (splitmix64 step).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn graph(seed: u64) -> Csr {
    let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, seed);
    WeightModel::UniformReal.apply(g, seed)
}

/// One scripted command; pure data, so the served and offline runs replay
/// the exact same stream.
#[derive(Clone, Debug)]
enum Step {
    Walk {
        graph: usize,
        walker: &'static str,
        queries: Vec<NodeId>,
        steps: usize,
    },
    Update {
        graph: usize,
        batch: Vec<GraphUpdate>,
    },
}

/// Builds a mixed read/write script over two graphs: walk bursts with
/// update batches interleaved mid-stream (each an epoch boundary).
fn script(seed: u64) -> Vec<Step> {
    let mut rng = seed;
    let nodes = [graph(seed).num_nodes(), graph(seed + 101).num_nodes()];
    let edges = [graph(seed).num_edges(), graph(seed + 101).num_edges()];
    let walkers = ["node2vec", "uniform", "sopr"];
    let mut steps = Vec::new();
    for burst in 0..4 {
        for _ in 0..2 + (mix(&mut rng) % 3) {
            let g = (mix(&mut rng) % 2) as usize;
            let count = 8 + (mix(&mut rng) % 17) as usize;
            let start = mix(&mut rng) % nodes[g] as u64;
            steps.push(Step::Walk {
                graph: g,
                walker: walkers[(mix(&mut rng) % 3) as usize],
                queries: (0..count)
                    .map(|i| ((start + i as u64) % nodes[g] as u64) as NodeId)
                    .collect(),
                steps: 4 + (mix(&mut rng) % 4) as usize,
            });
        }
        if burst < 3 {
            let g = (mix(&mut rng) % 2) as usize;
            // Edge indices stay valid at every later epoch: `AddEdge`
            // only grows the edge list, so `% edges[g]` never dangles.
            steps.push(Step::Update {
                graph: g,
                batch: vec![
                    GraphUpdate::AddEdge {
                        src: (mix(&mut rng) % nodes[g] as u64) as NodeId,
                        dst: (mix(&mut rng) % nodes[g] as u64) as NodeId,
                        weight: 1.0 + (mix(&mut rng) % 8) as f32,
                        label: 0,
                    },
                    GraphUpdate::SetWeight {
                        edge: (mix(&mut rng) % edges[g] as u64) as usize,
                        weight: 0.5 + (mix(&mut rng) % 4) as f32,
                    },
                ],
            });
        }
    }
    steps
}

/// Everything observable about one served walk, floats as bits so
/// equality is exact.
#[derive(Debug, PartialEq)]
struct WalkRecord {
    epoch: u64,
    queries: usize,
    steps_taken: u64,
    sim_seconds: u64,
    paths: Option<Vec<Vec<NodeId>>>,
}

fn record(report: &RunReport) -> WalkRecord {
    WalkRecord {
        epoch: report.graph_version.epoch,
        queries: report.queries,
        steps_taken: report.steps_taken,
        sim_seconds: report.sim_seconds.to_bits(),
        paths: report.paths.clone(),
    }
}

fn request(graphs: &[GraphHandle], step: &Step) -> WalkRequest {
    let Step::Walk {
        graph,
        walker,
        queries,
        steps,
    } = step
    else {
        panic!("not a walk step")
    };
    WalkRequest::new(&graphs[*graph], *walker, queries.clone())
        .steps(*steps)
        .record_paths(true)
}

/// Serves the script through a `WalkServer` and returns the walk records
/// in admission order plus the final server stats.
fn serve_run(
    seed: u64,
    workers: usize,
    topology: Topology,
    batch_max: usize,
) -> (Vec<WalkRecord>, ServerStats) {
    let server = WalkServer::builder()
        .device(DeviceSpec::tiny())
        .workers(workers)
        .topology(topology)
        .batch_max(batch_max)
        .serve();
    let graphs = [
        GraphHandle::new(graph(seed)),
        GraphHandle::new(graph(seed + 101)),
    ];
    let mut walk_tickets = Vec::new();
    let mut update_tickets = Vec::new();
    for step in script(seed) {
        match &step {
            Step::Walk { .. } => {
                walk_tickets.push(server.submit(request(&graphs, &step)).expect("admitted"));
            }
            Step::Update { graph, batch } => {
                update_tickets.push(
                    server
                        .apply_updates(&graphs[*graph], batch.clone())
                        .expect("admitted"),
                );
            }
        }
    }
    for t in update_tickets {
        t.wait().expect("update applies");
    }
    let records = walk_tickets
        .into_iter()
        .map(|t| record(&t.wait().expect("served")))
        .collect();
    (records, server.shutdown())
}

/// Replays the same script through a plain batch `Session`, draining at
/// every update boundary — the offline reference the serving guarantee is
/// stated against.
fn offline_run(seed: u64, workers: usize, topology: Topology) -> Vec<WalkRecord> {
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(workers)
        .topology(topology)
        .build();
    let graphs = [
        session.load_graph(graph(seed)),
        session.load_graph(graph(seed + 101)),
    ];
    let mut records = Vec::new();
    let drain = |session: &mut Session, records: &mut Vec<WalkRecord>| {
        records.extend(
            session
                .drain()
                .into_iter()
                .map(|(_, r)| record(&r.expect("drain succeeds"))),
        );
    };
    for step in script(seed) {
        match &step {
            Step::Walk { .. } => {
                session.submit(request(&graphs, &step));
            }
            Step::Update { graph, batch } => {
                drain(&mut session, &mut records);
                session
                    .apply_updates(&graphs[*graph], batch)
                    .expect("update applies");
            }
        }
    }
    drain(&mut session, &mut records);
    records
}

/// The acceptance sweep: served ≡ offline for every
/// `workers × topology` combination, including the mid-stream epoch
/// boundaries, with a small serving window so the stream spans several
/// serve cycles.
#[test]
fn served_walks_match_offline_drains_across_workers_and_topologies() {
    let topologies = [
        Topology::Single,
        Topology::MultiDevice { devices: 2 },
        Topology::Partitioned {
            devices: 2,
            link: LinkSpec::nvlink(),
        },
    ];
    for seed in [5u64, 23] {
        for topology in topologies {
            let reference = offline_run(seed, 1, topology);
            assert!(
                reference.iter().any(|r| r.epoch > 0),
                "script must span epochs"
            );
            for workers in [1usize, 2, 4, 8] {
                let offline = offline_run(seed, workers, topology);
                assert_eq!(
                    offline, reference,
                    "offline drains diverged across worker counts (seed {seed})"
                );
                let (served, stats) = serve_run(seed, workers, topology, 4);
                assert_eq!(
                    served, reference,
                    "served walks diverged from offline drains \
                     (seed {seed}, workers {workers}, topology {topology:?})"
                );
                assert_eq!(stats.served as usize, reference.len());
                assert_eq!(stats.serve_latency.count() as usize, reference.len());
                assert_eq!(stats.updates_applied, 3);
                assert_eq!(
                    stats.admission.rejected, 0,
                    "default policy rejects nothing"
                );
                assert_eq!(stats.admission.shed, 0);
            }
        }
    }
}

/// Waits (bounded) for `cond` to become true.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A tiny request for the admission tests.
fn tiny_request(g: &GraphHandle) -> WalkRequest {
    WalkRequest::new(g, "uniform", vec![0 as NodeId, 1, 2]).steps(3)
}

/// Pauses the server and parks its loop holding one popped command, so
/// the queue depth is exact and the overload policies fire
/// deterministically. Returns the held ticket.
fn park_loop(server: &WalkServer, g: &GraphHandle) -> WalkTicket {
    server.pause();
    let held = server.submit(tiny_request(g)).expect("first admit");
    // The loop pops the command, then parks at the pause gate before
    // processing it: queue empty, ticket unresolved.
    wait_until("loop to hold the first command", || {
        server.queue_depth() == 0 && !held.is_ready()
    });
    held
}

#[test]
fn reject_policy_fails_fast_when_the_queue_is_full() {
    let server = WalkServer::builder()
        .device(DeviceSpec::tiny())
        .workers(1)
        .capacity(2)
        .admission(AdmissionPolicy::Reject)
        .serve();
    let g = GraphHandle::new(graph(3));
    let held = park_loop(&server, &g);
    let queued: Vec<WalkTicket> = (0..2)
        .map(|_| server.submit(tiny_request(&g)).expect("fits in the queue"))
        .collect();
    // Queue full, loop parked: the next submit is refused immediately.
    match server.submit(tiny_request(&g)) {
        Err(ServeError::Rejected) => {}
        other => panic!("expected rejection, got {other:?}"),
    }
    server.resume();
    assert!(held.wait().is_ok());
    for t in queued {
        assert!(t.wait().is_ok(), "admitted requests all serve after resume");
    }
    let stats = server.shutdown();
    assert_eq!(stats.admission.rejected, 1);
    assert_eq!(stats.served, 3);
    assert_eq!(stats.admission.peak_depth, 2);
}

#[test]
fn shed_oldest_policy_evicts_the_oldest_queued_request() {
    let server = WalkServer::builder()
        .device(DeviceSpec::tiny())
        .workers(1)
        .capacity(2)
        .admission(AdmissionPolicy::ShedOldest)
        .serve();
    let g = GraphHandle::new(graph(3));
    let held = park_loop(&server, &g);
    let oldest = server.submit(tiny_request(&g)).expect("admitted");
    let newer = server.submit(tiny_request(&g)).expect("admitted");
    // Queue full: admitting one more sheds `oldest` (not the held one,
    // which already left the queue).
    let newest = server.submit(tiny_request(&g)).expect("admitted with shed");
    assert!(matches!(oldest.wait(), Err(ServeError::Shed)));
    server.resume();
    assert!(held.wait().is_ok());
    assert!(newer.wait().is_ok());
    assert!(newest.wait().is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.admission.shed, 1);
    assert_eq!(stats.served, 3, "shed requests are never served");
}

#[test]
fn block_policy_applies_backpressure_and_loses_nothing() {
    let server = WalkServer::builder()
        .device(DeviceSpec::tiny())
        .workers(1)
        .capacity(2)
        .admission(AdmissionPolicy::Block)
        .serve();
    let g = GraphHandle::new(graph(3));
    // Hammer from several client threads: more in flight than capacity,
    // so submitters must block — but every request is served.
    let tickets: Vec<WalkTicket> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    (0..5)
                        .map(|_| {
                            server
                                .submit(tiny_request(&g))
                                .expect("block never refuses")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client panicked"))
            .collect()
    });
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, 20);
    assert_eq!(stats.admission.rejected, 0);
    assert_eq!(stats.admission.shed, 0);
    assert_eq!(stats.serve_latency.count(), 20);
    assert!(stats.serve_latency.p99() > 0.0);
}

/// Drain-during-ingest epoch pinning: walks admitted before an update
/// serve at the pre-update epoch, walks admitted after it at the
/// post-update epoch — even when all of them sit in one serving cycle.
#[test]
fn updates_pin_epoch_boundaries_within_one_serving_cycle() {
    let server = WalkServer::builder()
        .device(DeviceSpec::tiny())
        .workers(2)
        .capacity(16)
        .serve();
    let g = GraphHandle::new(graph(9));
    let held = park_loop(&server, &g);
    let before = server.submit(tiny_request(&g)).expect("admitted");
    let update = server
        .apply_updates(
            &g,
            vec![GraphUpdate::AddEdge {
                src: 0,
                dst: 3,
                weight: 2.0,
                label: 0,
            }],
        )
        .expect("admitted");
    let after = server.submit(tiny_request(&g)).expect("admitted");
    server.resume();
    assert_eq!(held.wait().expect("served").graph_version.epoch, 0);
    assert_eq!(before.wait().expect("served").graph_version.epoch, 0);
    assert_eq!(update.wait().expect("applied").version.epoch, 1);
    assert_eq!(after.wait().expect("served").graph_version.epoch, 1);
    let stats = server.shutdown();
    assert_eq!(stats.updates_applied, 1);
    // The session underneath migrated its caches incrementally — the
    // update did not force a re-digest.
    assert_eq!(stats.session.digests_computed, 1);
}

/// Ingest is concurrent with serving: while the loop is busy draining,
/// submissions are admitted without waiting for the drain.
#[test]
fn admission_overlaps_an_active_drain() {
    let server = WalkServer::builder()
        .device(DeviceSpec::tiny())
        .workers(1)
        .capacity(64)
        .batch_max(1)
        .serve();
    let g = GraphHandle::new(graph(13));
    // A heavyweight first request keeps the loop busy (batch_max 1, so
    // it drains alone)...
    let queries: Vec<NodeId> = (0..200).map(|i| i % 256).collect();
    let big = server
        .submit(
            WalkRequest::new(&g, "node2vec", queries)
                .steps(64)
                .record_paths(true),
        )
        .expect("admitted");
    // ...while later submissions are admitted immediately.
    let tail: Vec<WalkTicket> = (0..8)
        .map(|_| server.submit(tiny_request(&g)).expect("admitted mid-drain"))
        .collect();
    assert!(big.wait().is_ok());
    for t in tail {
        assert!(t.wait().is_ok());
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, 9);
    assert!(
        stats.serve_cycles >= 2,
        "batch_max 1 forces multiple cycles"
    );
}

/// An invalid update batch fails its own ticket, leaves the graph and
/// the serving loop intact, and later commands keep serving.
#[test]
fn failed_updates_surface_typed_and_do_not_stall_serving() {
    let server = WalkServer::builder()
        .device(DeviceSpec::tiny())
        .workers(1)
        .serve();
    let g = GraphHandle::new(graph(21));
    let nodes = g.graph().num_nodes() as NodeId;
    let bad = server
        .apply_updates(
            &g,
            vec![GraphUpdate::AddEdge {
                src: nodes + 7, // out of range
                dst: 0,
                weight: 1.0,
                label: 0,
            }],
        )
        .expect("admitted");
    let walk = server.submit(tiny_request(&g)).expect("admitted");
    assert!(matches!(bad.wait(), Err(ServeError::Graph(_))));
    let report = walk.wait().expect("serving continues");
    assert_eq!(report.graph_version.epoch, 0, "failed batch left epoch 0");
    let stats = server.shutdown();
    assert_eq!(stats.updates_applied, 0);
    assert_eq!(stats.served, 1);
}

/// Shutdown closes admission but serves everything already admitted.
#[test]
fn shutdown_serves_all_admitted_work() {
    let server = WalkServer::builder()
        .device(DeviceSpec::tiny())
        .workers(2)
        .serve();
    let g = GraphHandle::new(graph(31));
    let tickets: Vec<WalkTicket> = (0..6)
        .map(|_| server.submit(tiny_request(&g)).expect("admitted"))
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats.served, 6);
    for t in tickets {
        assert!(t.wait().is_ok(), "admitted work is served through shutdown");
    }
}
