//! Determinism and multi-device consistency guarantees.

use flexiwalker::core::multi_device::{MultiDeviceEngine, Partitioning};
use flexiwalker::prelude::*;

fn graph() -> Csr {
    let g = gen::rmat(9, 4096, gen::RmatParams::SOCIAL, 5);
    WeightModel::UniformReal.apply(g, 5)
}

fn run(
    engine: &dyn WalkEngine,
    g: &Csr,
    w: impl IntoWalker,
    queries: &[NodeId],
    cfg: &WalkConfig,
) -> RunReport {
    engine
        .run(&WalkRequest::new(g.clone(), w, queries).with_config(cfg.clone()))
        .expect("run")
}

#[test]
fn same_seed_single_thread_is_bit_identical() {
    let g = graph();
    let queries: Vec<NodeId> = (0..64).collect();
    let cfg = WalkConfig {
        steps: 15,
        record_paths: true,
        host_threads: 1,
        seed: 1234,
        ..WalkConfig::default()
    };
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let a = run(&engine, &g, &Node2Vec::paper(true), &queries, &cfg);
    let b = run(&engine, &g, &Node2Vec::paper(true), &queries, &cfg);
    assert_eq!(a.paths, b.paths);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.sim_seconds, b.sim_seconds);
    assert_eq!(a.sampler_steps, b.sampler_steps);
}

#[test]
fn different_seeds_produce_different_walks() {
    let g = graph();
    let queries: Vec<NodeId> = (0..64).collect();
    let mk = |seed| WalkConfig {
        steps: 15,
        record_paths: true,
        host_threads: 1,
        seed,
        ..WalkConfig::default()
    };
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let a = run(&engine, &g, &Node2Vec::paper(true), &queries, &mk(1));
    let b = run(&engine, &g, &Node2Vec::paper(true), &queries, &mk(2));
    assert_ne!(a.paths, b.paths);
}

#[test]
fn parallel_execution_is_bit_identical() {
    // Per-query RNG streams: thread count changes who does the work, not
    // what any walk does.
    let g = graph();
    let queries: Vec<NodeId> = (0..256).collect();
    let mk = |threads| WalkConfig {
        steps: 10,
        record_paths: true,
        host_threads: threads,
        seed: 7,
        ..WalkConfig::default()
    };
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let seq = run(&engine, &g, &SecondOrderPr::paper(), &queries, &mk(1));
    let par = run(&engine, &g, &SecondOrderPr::paper(), &queries, &mk(8));
    assert_eq!(seq.queries, par.queries);
    assert_eq!(seq.paths, par.paths);
    assert_eq!(seq.steps_taken, par.steps_taken);
}

#[test]
fn multi_device_covers_every_query_exactly_once() {
    let _g = graph();
    let queries: Vec<NodeId> = (0..200).collect();
    for partitioning in [Partitioning::Hash, Partitioning::Range] {
        for devices in 1..=4 {
            let mut engine = MultiDeviceEngine::new(DeviceSpec::a6000(), devices);
            engine.partitioning = partitioning;
            let parts = engine.partition(&queries);
            let mut all: Vec<NodeId> = parts.into_iter().flatten().collect();
            all.sort_unstable();
            let mut expect = queries.clone();
            expect.sort_unstable();
            assert_eq!(all, expect, "{partitioning:?} x{devices} lost queries");
        }
    }
}

#[test]
fn multi_device_runs_match_single_device_semantics() {
    let g = graph();
    let queries: Vec<NodeId> = (0..128).collect();
    let cfg = WalkConfig {
        steps: 10,
        record_paths: false,
        host_threads: 1,
        ..WalkConfig::default()
    };
    let single = run(
        &MultiDeviceEngine::new(DeviceSpec::a6000(), 1),
        &g,
        &Node2Vec::paper(true),
        &queries,
        &cfg,
    );
    let quad = run(
        &MultiDeviceEngine::new(DeviceSpec::a6000(), 4),
        &g,
        &Node2Vec::paper(true),
        &queries,
        &cfg,
    );
    assert_eq!(single.queries, quad.queries);
    let lo = single.steps_taken.min(quad.steps_taken) as f64;
    let hi = single.steps_taken.max(quad.steps_taken) as f64;
    assert!(hi / lo < 1.05, "multi-device changed walk volume");
    assert!(quad.saturated_seconds < single.saturated_seconds);
}
