//! Determinism and multi-device consistency guarantees.

use flexiwalker::core::multi_device::{MultiDeviceEngine, Partitioning};
use flexiwalker::prelude::*;

fn graph() -> Csr {
    let g = gen::rmat(9, 4096, gen::RmatParams::SOCIAL, 5);
    WeightModel::UniformReal.apply(g, 5)
}

#[test]
fn same_seed_single_thread_is_bit_identical() {
    let g = graph();
    let queries: Vec<NodeId> = (0..64).collect();
    let cfg = WalkConfig {
        steps: 15,
        record_paths: true,
        host_threads: 1,
        seed: 1234,
        ..WalkConfig::default()
    };
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let a = engine.run(&g, &Node2Vec::paper(true), &queries, &cfg).unwrap();
    let b = engine.run(&g, &Node2Vec::paper(true), &queries, &cfg).unwrap();
    assert_eq!(a.paths, b.paths);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.sim_seconds, b.sim_seconds);
    assert_eq!(a.chosen_rjs, b.chosen_rjs);
}

#[test]
fn different_seeds_produce_different_walks() {
    let g = graph();
    let queries: Vec<NodeId> = (0..64).collect();
    let mk = |seed| WalkConfig {
        steps: 15,
        record_paths: true,
        host_threads: 1,
        seed,
        ..WalkConfig::default()
    };
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let a = engine
        .run(&g, &Node2Vec::paper(true), &queries, &mk(1))
        .unwrap();
    let b = engine
        .run(&g, &Node2Vec::paper(true), &queries, &mk(2))
        .unwrap();
    assert_ne!(a.paths, b.paths);
}

#[test]
fn parallel_execution_preserves_aggregate_work() {
    // Thread count must not change how much work exists — only who does it.
    let g = graph();
    let queries: Vec<NodeId> = (0..256).collect();
    let mk = |threads| WalkConfig {
        steps: 10,
        host_threads: threads,
        seed: 7,
        ..WalkConfig::default()
    };
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let seq = engine
        .run(&g, &SecondOrderPr::paper(), &queries, &mk(1))
        .unwrap();
    let par = engine
        .run(&g, &SecondOrderPr::paper(), &queries, &mk(8))
        .unwrap();
    assert_eq!(seq.queries, par.queries);
    // Dynamic queue assignment shifts which lane walks which query, so
    // exact paths differ, but total steps should be close (sink-limited).
    let lo = seq.steps_taken.min(par.steps_taken) as f64;
    let hi = seq.steps_taken.max(par.steps_taken) as f64;
    assert!(hi / lo < 1.05, "step totals diverged: {lo} vs {hi}");
}

#[test]
fn multi_device_covers_every_query_exactly_once() {
    let _g = graph();
    let queries: Vec<NodeId> = (0..200).collect();
    for partitioning in [Partitioning::Hash, Partitioning::Range] {
        for devices in 1..=4 {
            let mut engine = MultiDeviceEngine::new(DeviceSpec::a6000(), devices);
            engine.partitioning = partitioning;
            let parts = engine.partition(&queries);
            let mut all: Vec<NodeId> = parts.into_iter().flatten().collect();
            all.sort_unstable();
            let mut expect = queries.clone();
            expect.sort_unstable();
            assert_eq!(all, expect, "{partitioning:?} x{devices} lost queries");
        }
    }
}

#[test]
fn multi_device_runs_match_single_device_semantics() {
    let g = graph();
    let queries: Vec<NodeId> = (0..128).collect();
    let cfg = WalkConfig {
        steps: 10,
        record_paths: false,
        host_threads: 1,
        ..WalkConfig::default()
    };
    let single = MultiDeviceEngine::new(DeviceSpec::a6000(), 1)
        .run(&g, &Node2Vec::paper(true), &queries, &cfg)
        .unwrap();
    let quad = MultiDeviceEngine::new(DeviceSpec::a6000(), 4)
        .run(&g, &Node2Vec::paper(true), &queries, &cfg)
        .unwrap();
    assert_eq!(single.queries, quad.queries);
    let lo = single.steps_taken.min(quad.steps_taken) as f64;
    let hi = single.steps_taken.max(quad.steps_taken) as f64;
    assert!(hi / lo < 1.05, "multi-device changed walk volume");
    assert!(quad.saturated_seconds < single.saturated_seconds);
}
