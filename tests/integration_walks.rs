//! Cross-crate integration: every engine × every workload produces valid,
//! correctly distributed walks, all through the `WalkRequest` API.

use flexiwalker::baselines::{
    CSawGpu, CpuSpec, FlowWalkerGpu, KnightKingCpu, NextDoorGpu, SkywalkerGpu, SoWalkerCpu,
    ThunderRwCpu,
};
use flexiwalker::prelude::*;
use flexiwalker::sampling::stat;

fn all_engines() -> Vec<Box<dyn WalkEngine>> {
    let spec = DeviceSpec::a6000();
    vec![
        Box::new(FlexiWalkerEngine::new(spec.clone())),
        Box::new(CSawGpu::new(spec.clone())),
        Box::new(NextDoorGpu::new(spec.clone())),
        Box::new(SkywalkerGpu::new(spec.clone())),
        Box::new(FlowWalkerGpu::new(spec)),
        Box::new(ThunderRwCpu::new(CpuSpec::epyc_9124p())),
        Box::new(SoWalkerCpu::new(CpuSpec::epyc_9124p())),
        Box::new(KnightKingCpu::new(CpuSpec::epyc_9124p())),
    ]
}

fn workloads() -> Vec<std::sync::Arc<dyn DynamicWalk>> {
    vec![
        std::sync::Arc::new(Node2Vec::paper(true)),
        std::sync::Arc::new(Node2Vec::paper(false)),
        std::sync::Arc::new(MetaPath::paper(true)),
        std::sync::Arc::new(MetaPath::paper(false)),
        std::sync::Arc::new(SecondOrderPr::paper()),
        std::sync::Arc::new(UniformWalk),
    ]
}

fn test_graph() -> Csr {
    let g = gen::rmat(9, 4096, gen::RmatParams::SOCIAL, 77);
    let g = WeightModel::UniformReal.apply(g, 77);
    flexiwalker::graph::props::assign_uniform_labels(g, 5, 77)
}

fn run(
    engine: &dyn WalkEngine,
    g: &Csr,
    w: impl IntoWalker,
    queries: &[NodeId],
    cfg: &WalkConfig,
) -> Result<RunReport, EngineError> {
    engine.run(&WalkRequest::new(g.clone(), w, queries).with_config(cfg.clone()))
}

#[test]
fn every_engine_runs_every_workload_with_valid_edges() {
    let g = test_graph();
    let queries: Vec<NodeId> = (0..64).collect();
    let cfg = WalkConfig {
        steps: 12,
        record_paths: true,
        ..WalkConfig::default()
    };
    for engine in all_engines() {
        for w in workloads() {
            let report = run(engine.as_ref(), &g, w.clone(), &queries, &cfg)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", engine.name(), w.name()));
            assert_eq!(report.queries, 64, "{} {}", engine.name(), w.name());
            // Tallies count sampling attempts: every advancing step plus at
            // most one dead-end attempt per query.
            let tally = report.sampler_steps.total();
            assert!(
                tally >= report.steps_taken && tally <= report.steps_taken + 64,
                "{} {}: tallies {tally} inconsistent with {} steps",
                engine.name(),
                w.name(),
                report.steps_taken
            );
            let paths = report.paths.as_ref().expect("recorded");
            for path in paths {
                for pair in path.windows(2) {
                    assert!(
                        g.has_edge(pair[0], pair[1]),
                        "{} walked non-edge {}->{} under {}",
                        engine.name(),
                        pair[0],
                        pair[1],
                        w.name()
                    );
                }
            }
        }
    }
}

#[test]
fn engines_agree_on_single_step_distribution() {
    // One star node with known weights: every engine must draw the next
    // node from the exact w̃/Σw̃ distribution. This is the cross-system
    // correctness anchor: adaptive selection, estimator bounds, kernel
    // optimisations — none may bend the sampled distribution.
    let weights = [5.0f32, 1.0, 3.0, 2.0, 4.0];
    let mut b = CsrBuilder::new(6);
    for (i, &w) in weights.iter().enumerate() {
        b.push_weighted(0, (i + 1) as u32, w);
    }
    let g = b.build().unwrap();
    let probs = stat::normalize(&weights);
    let cfg_base = WalkConfig {
        steps: 1,
        record_paths: true,
        ..WalkConfig::default()
    };
    for engine in all_engines() {
        let mut counts = vec![0u64; weights.len()];
        for seed in 0..4000u64 {
            let mut cfg = cfg_base.clone();
            cfg.seed = seed;
            let report = run(engine.as_ref(), &g, &UniformWalk, &[0], &cfg).expect("run");
            let path = &report.paths.as_ref().unwrap()[0];
            assert_eq!(path.len(), 2, "{}", engine.name());
            counts[(path[1] - 1) as usize] += 1;
        }
        stat::assert_matches_distribution(&counts, &probs, engine.name());
    }
}

#[test]
fn node2vec_respects_return_parameter() {
    // Path graph 0 <-> 1 with an extra neighbor: with a huge return
    // parameter `a`, revisiting the previous node becomes rare.
    let mut b = CsrBuilder::new(3);
    b.push_weighted(0, 1, 1.0);
    b.push_weighted(1, 0, 1.0);
    b.push_weighted(1, 2, 1.0);
    b.push_weighted(2, 1, 1.0);
    let g = b.build().unwrap();
    let w = Node2Vec {
        a: 1000.0,
        b: 1.0,
        weighted: true,
    };
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let mut returns = 0u32;
    let mut total = 0u32;
    for seed in 0..800u64 {
        let cfg = WalkConfig {
            steps: 2,
            record_paths: true,
            seed,
            ..WalkConfig::default()
        };
        let report = run(&engine, &g, &w, &[0], &cfg).expect("run");
        let path = &report.paths.as_ref().unwrap()[0];
        // Step 1: 0 -> 1 (only option). Step 2: 1 -> {0 (return), 2}.
        if path.len() == 3 {
            total += 1;
            if path[2] == 0 {
                returns += 1;
            }
        }
    }
    assert!(total > 700);
    // P(return) = (1/1000) / (1/1000 + 1/b=1) ≈ 0.1%.
    assert!(
        returns < total / 50,
        "{returns}/{total} returns with a=1000 — return parameter ignored?"
    );
}

#[test]
fn metapath_dead_ends_terminate_cleanly_everywhere() {
    // All edges labeled 9 but the schema wants 0: every walk must stop at
    // its start node without panicking, in every engine.
    let g = gen::cycle(16);
    let g = g.with_labels(vec![9; 16]).unwrap();
    let w = MetaPath {
        schema: vec![0],
        weighted: false,
    };
    let queries: Vec<NodeId> = (0..16).collect();
    let cfg = WalkConfig {
        steps: 4,
        record_paths: true,
        ..WalkConfig::default()
    };
    for engine in all_engines() {
        let report = run(engine.as_ref(), &g, &w, &queries, &cfg).expect("run");
        for path in report.paths.as_ref().unwrap() {
            assert_eq!(path.len(), 1, "{} advanced into a dead end", engine.name());
        }
        assert_eq!(report.steps_taken, 0, "{}", engine.name());
    }
}

#[test]
fn flexiwalker_beats_gpu_baselines_on_weighted_workloads() {
    // The headline Table 2 ordering at integration scale.
    let g = test_graph();
    let queries: Vec<NodeId> = (0..128).collect();
    let cfg = WalkConfig {
        steps: 20,
        ..WalkConfig::default()
    };
    let w = Node2Vec::paper(true);
    let spec = DeviceSpec::a6000();
    let flexi = run(
        &FlexiWalkerEngine::new(spec.clone()),
        &g,
        &w,
        &queries,
        &cfg,
    )
    .unwrap();
    for engine in [
        Box::new(CSawGpu::new(spec.clone())) as Box<dyn WalkEngine>,
        Box::new(SkywalkerGpu::new(spec.clone())),
        Box::new(FlowWalkerGpu::new(spec)),
    ] {
        let r = run(engine.as_ref(), &g, &w, &queries, &cfg).unwrap();
        assert!(
            flexi.saturated_seconds < r.saturated_seconds,
            "FlexiWalker ({}) not faster than {} ({})",
            flexi.saturated_seconds,
            engine.name(),
            r.saturated_seconds
        );
    }
}
