//! Churn sweep: epoch-versioned sampler state (alias tables / CDFs) stays
//! **bit-identical** to rebuild-from-scratch across weight-only and
//! structural update batches, across worker counts and topologies, and
//! across served vs offline execution — while the session counters prove
//! the maintenance was incremental (patches dominate builds under
//! weight-only churn).

use flexiwalker::prelude::*;
use std::sync::Arc;

/// Deterministic per-seed script randomness (splitmix64 step).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const NODES: usize = 160;
const HUBS: usize = 4;
const HUB_DEG: usize = 48;

/// A weighted graph with a few high-degree hubs: at hub degree the
/// prebuilt-state strategies out-price the streaming kernels, so the cost
/// model genuinely routes steps through the resident tables.
fn wgraph(seed: u64) -> Csr {
    let mut rng = seed;
    let mut b = CsrBuilder::new(NODES);
    for src in 0..NODES as NodeId {
        let fanout = if (src as usize) < HUBS {
            HUB_DEG
        } else {
            2 + (mix(&mut rng) % 3) as usize
        };
        for _ in 0..fanout {
            let dst = (mix(&mut rng) % NODES as u64) as NodeId;
            let w = 0.5 + (mix(&mut rng) % 8) as f32;
            b.push_weighted(src, dst, w);
        }
    }
    b.build().expect("valid weighted graph")
}

/// One scripted command; pure data, so every run replays the exact same
/// stream.
#[derive(Clone, Debug)]
enum Step {
    Walk { queries: Vec<NodeId>, steps: usize },
    Update { batch: Vec<GraphUpdate> },
}

/// Weight-only churn: overwrite a handful of edge weights. Edge ids stay
/// comfortably below the graph's minimum edge count across the script.
fn weight_batch(rng: &mut u64) -> Vec<GraphUpdate> {
    (0..6)
        .map(|_| GraphUpdate::SetWeight {
            edge: (mix(rng) % (HUBS * HUB_DEG + NODES) as u64) as usize,
            weight: 0.25 + (mix(rng) % 16) as f32 * 0.5,
        })
        .collect()
}

/// Structural churn: insertions (some landing on hubs) plus a removal,
/// with a couple of weight overwrites riding the same batch.
fn structural_batch(rng: &mut u64) -> Vec<GraphUpdate> {
    let mut batch: Vec<GraphUpdate> = (0..3)
        .map(|_| GraphUpdate::AddEdge {
            src: (mix(rng) % NODES as u64) as NodeId,
            dst: (mix(rng) % NODES as u64) as NodeId,
            weight: 1.0 + (mix(rng) % 4) as f32,
            label: 0,
        })
        .collect();
    batch.push(GraphUpdate::RemoveEdge {
        src: (mix(rng) % NODES as u64) as NodeId,
        dst: (mix(rng) % NODES as u64) as NodeId,
    });
    batch.extend((0..2).map(|_| GraphUpdate::SetWeight {
        edge: (mix(rng) % (HUBS * HUB_DEG) as u64) as usize,
        weight: 0.5 + (mix(rng) % 8) as f32,
    }));
    batch
}

/// Four walk bursts with three update batches between them: weight-only,
/// structural, weight-only — the structural batch exercises the dirty
/// refresh, the weight-only ones the O(Δ) patch path.
fn script(seed: u64) -> Vec<Step> {
    let mut rng = seed;
    let mut steps = Vec::new();
    for burst in 0..4 {
        for _ in 0..2 + (mix(&mut rng) % 2) {
            let count = 8 + (mix(&mut rng) % 9) as usize;
            let start = mix(&mut rng) % NODES as u64;
            steps.push(Step::Walk {
                // Bias a few starts onto the hubs so high-degree
                // frontiers show up in every burst.
                queries: (0..count)
                    .map(|i| {
                        if i < 3 {
                            (i % HUBS) as NodeId
                        } else {
                            ((start + i as u64) % NODES as u64) as NodeId
                        }
                    })
                    .collect(),
                steps: 4 + (mix(&mut rng) % 4) as usize,
            });
        }
        match burst {
            0 | 2 => steps.push(Step::Update {
                batch: weight_batch(&mut rng),
            }),
            1 => steps.push(Step::Update {
                batch: structural_batch(&mut rng),
            }),
            _ => {}
        }
    }
    steps
}

/// Everything observable about one walk, floats as bits so equality is
/// exact.
#[derive(Debug, PartialEq)]
struct WalkRecord {
    epoch: u64,
    queries: usize,
    steps_taken: u64,
    sim_seconds: u64,
    paths: Option<Vec<Vec<NodeId>>>,
}

fn record(report: &RunReport) -> WalkRecord {
    WalkRecord {
        epoch: report.graph_version.epoch,
        queries: report.queries,
        steps_taken: report.steps_taken,
        sim_seconds: report.sim_seconds.to_bits(),
        paths: report.paths.clone(),
    }
}

fn request(g: &GraphHandle, step: &Step) -> WalkRequest {
    let Step::Walk { queries, steps } = step else {
        panic!("not a walk step")
    };
    WalkRequest::new(g, "uniform", queries.clone())
        .steps(*steps)
        .record_paths(true)
}

/// A state-enabled session with every stateful strategy registered: ALS
/// (alias tables), ITS and tcdf (prefix CDFs) compete with the streaming
/// built-ins under the update-aware cost model.
fn state_session(
    workers: usize,
    topology: Topology,
    strategy: SelectionStrategy,
) -> SessionBuilder {
    FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(workers)
        .topology(topology)
        .strategy(strategy)
        .register_sampler(Arc::new(AliasSampler))
        .register_sampler(Arc::new(ItsSampler))
        .register_sampler(Arc::new(TcdfSampler))
        .incremental_state(true)
}

/// Replays the script through a batch `Session`, draining at every update
/// boundary — the reference every other run is compared against.
fn offline_run(
    seed: u64,
    workers: usize,
    topology: Topology,
    strategy: SelectionStrategy,
) -> (Vec<WalkRecord>, SessionStats) {
    let mut session = state_session(workers, topology, strategy).build();
    let g = session.load_graph(wgraph(seed));
    let mut records = Vec::new();
    let drain = |session: &mut Session, records: &mut Vec<WalkRecord>| {
        records.extend(
            session
                .drain()
                .into_iter()
                .map(|(_, r)| record(&r.expect("drain succeeds"))),
        );
    };
    for step in script(seed) {
        match &step {
            Step::Walk { .. } => {
                session.submit(request(&g, &step));
            }
            Step::Update { batch } => {
                drain(&mut session, &mut records);
                session.apply_updates(&g, batch).expect("update applies");
            }
        }
    }
    drain(&mut session, &mut records);
    (records, session.stats())
}

/// Serves the same script through a `WalkServer`, update batches
/// interleaved with walk requests.
fn serve_run(seed: u64, workers: usize, topology: Topology) -> (Vec<WalkRecord>, ServerStats) {
    let server = WalkServer::builder()
        .session(state_session(
            workers,
            topology,
            SelectionStrategy::CostModel,
        ))
        .batch_max(4)
        .serve();
    let g = GraphHandle::new(wgraph(seed));
    let mut walk_tickets = Vec::new();
    let mut update_tickets = Vec::new();
    for step in script(seed) {
        match &step {
            Step::Walk { .. } => {
                walk_tickets.push(server.submit(request(&g, &step)).expect("admitted"));
            }
            Step::Update { batch } => {
                update_tickets.push(server.apply_updates(&g, batch.clone()).expect("admitted"));
            }
        }
    }
    for t in update_tickets {
        t.wait().expect("batch applies");
    }
    let records = walk_tickets
        .into_iter()
        .map(|t| record(&t.wait().expect("served")))
        .collect();
    (records, server.shutdown())
}

/// The walk-visible slice of a record — what must match between a session
/// that *patches* its state across epochs and one that *rebuilds* it from
/// scratch (the rebuild run serves from fresh epoch-0 handles, so version
/// fields are not comparable).
type WalkPaths = (usize, u64, Option<Vec<Vec<NodeId>>>);

/// Replays the script; at every update boundary the `rebuild` variant
/// abandons the handle and reloads the post-batch snapshot into a *fresh*
/// handle, forcing every sampler-state table to be rebuilt from scratch
/// instead of patched. Submission order is identical, so the per-query
/// RNG streams line up and the walks must match bit-for-bit.
fn scripted_paths(
    seed: u64,
    strategy: SelectionStrategy,
    rebuild: bool,
) -> (Vec<WalkPaths>, SessionStats) {
    let mut session = state_session(1, Topology::Single, strategy).build();
    let mut g = session.load_graph(wgraph(seed));
    let mut out: Vec<WalkPaths> = Vec::new();
    let drain = |session: &mut Session, out: &mut Vec<WalkPaths>| {
        out.extend(session.drain().into_iter().map(|(_, r)| {
            let r = r.expect("drain succeeds");
            (r.queries, r.steps_taken, r.paths.clone())
        }));
    };
    for step in script(seed) {
        match &step {
            Step::Walk { .. } => {
                session.submit(request(&g, &step));
            }
            Step::Update { batch } => {
                drain(&mut session, &mut out);
                session.apply_updates(&g, batch).expect("update applies");
                if rebuild {
                    let snapshot = g.graph();
                    g = session.load_graph(snapshot);
                }
            }
        }
    }
    drain(&mut session, &mut out);
    (out, session.stats())
}

/// The acceptance sweep: state-enabled walks are bit-identical across
/// `workers × topology` and across served vs offline execution, and the
/// single-worker reference proves the state actually lived in the cache —
/// built once, hit on every later launch, patched on every batch.
#[test]
fn churned_state_walks_bit_identical_across_workers_topologies_and_serving() {
    let seed = 23u64;
    let topologies = [
        Topology::Single,
        Topology::MultiDevice { devices: 2 },
        Topology::Partitioned {
            devices: 2,
            link: LinkSpec::nvlink(),
        },
    ];
    let (reference, stats) = offline_run(seed, 1, Topology::Single, SelectionStrategy::CostModel);
    assert!(
        reference.iter().any(|r| r.epoch > 0),
        "script must span epochs"
    );
    assert_eq!(stats.epochs_applied, 3);
    // Three stateful strategies are registered; each builds its table
    // once, then every later launch in the same epoch hits the cache and
    // every update batch patches it in place.
    assert!(stats.sampler_state_builds >= 3, "{stats:?}");
    assert!(
        stats.sampler_state_hits > stats.sampler_state_builds,
        "{stats:?}"
    );
    assert_eq!(stats.sampler_state_patches, 3 * stats.epochs_applied);
    let path_reference: Vec<_> = reference.iter().map(|r| r.paths.clone()).collect();
    for topology in topologies {
        let (topo_reference, _) = offline_run(seed, 1, topology, SelectionStrategy::CostModel);
        assert_eq!(
            topo_reference
                .iter()
                .map(|r| r.paths.clone())
                .collect::<Vec<_>>(),
            path_reference,
            "paths diverged across topologies ({topology:?})"
        );
        for workers in [1usize, 2, 4, 8] {
            let (offline, _) = offline_run(seed, workers, topology, SelectionStrategy::CostModel);
            assert_eq!(
                offline, topo_reference,
                "offline churn drains diverged (workers {workers}, {topology:?})"
            );
            let (served, sstats) = serve_run(seed, workers, topology);
            assert_eq!(
                served, topo_reference,
                "served churn walks diverged (workers {workers}, {topology:?})"
            );
            assert_eq!(sstats.served as usize, topo_reference.len());
            assert_eq!(sstats.session.epochs_applied, 3);
            assert!(sstats.session.sampler_state_patches > 0);
        }
    }
}

/// Refresh ≡ rebuild, pinned at the walk level for every stateful
/// strategy: a session that patches its alias/CDF tables across the whole
/// churn script produces bit-identical walks to one that rebuilds every
/// table from scratch at each epoch — under cost-model selection and with
/// each stateful sampler forced.
#[test]
fn incremental_state_matches_rebuild_from_scratch() {
    let seed = 41u64;
    let strategies = [
        SelectionStrategy::CostModel,
        SelectionStrategy::Only(sampler_ids::ALS),
        SelectionStrategy::Only(sampler_ids::ITS),
        SelectionStrategy::Only(sampler_ids::TCDF),
    ];
    for strategy in strategies {
        let (incremental, istats) = scripted_paths(seed, strategy, false);
        let (rebuilt, rstats) = scripted_paths(seed, strategy, true);
        assert_eq!(
            incremental, rebuilt,
            "patched state diverged from rebuilt state ({strategy:?})"
        );
        // The incremental run maintained its tables (patched, built once);
        // the rebuild run paid a fresh build per epoch.
        assert!(istats.sampler_state_patches > 0, "{strategy:?}: {istats:?}");
        assert!(
            rstats.sampler_state_builds > istats.sampler_state_builds,
            "{strategy:?}: rebuild run must build more ({rstats:?} vs {istats:?})"
        );
    }
}

/// Under pure weight-only churn the patch path must dominate: tables are
/// built once at epoch 0 and every subsequent batch lands as an O(Δ)
/// patch, never a rebuild — the `SessionStats` counters prove it and the
/// human-readable display surfaces them.
#[test]
fn weight_only_churn_patches_dominate_builds() {
    let mut session = state_session(1, Topology::Single, SelectionStrategy::CostModel).build();
    let g = session.load_graph(wgraph(7));
    let queries: Vec<NodeId> = (0..32).collect();
    let mut rng = 7u64;
    for _ in 0..5 {
        session
            .run(WalkRequest::new(&g, "uniform", queries.clone()).steps(6))
            .expect("serves");
        session
            .apply_updates(&g, &weight_batch(&mut rng))
            .expect("weight batch applies");
    }
    session
        .run(WalkRequest::new(&g, "uniform", queries).steps(6))
        .expect("serves");
    let stats = session.stats();
    assert_eq!(
        stats.sampler_state_builds, 3,
        "one build per stateful sampler, ever: {stats:?}"
    );
    assert_eq!(stats.sampler_state_patches, 3 * 5, "{stats:?}");
    assert!(stats.sampler_state_hits >= 5, "{stats:?}");
    assert!(
        stats.sampler_state_patches > stats.sampler_state_builds,
        "weight-only churn must patch, not rebuild: {stats:?}"
    );
    let shown = format!("{stats}");
    assert!(
        shown.contains("sampler state:"),
        "stats display must surface the state counters:\n{shown}"
    );
}

/// The resident tables genuinely serve steps: with hubs in the graph the
/// update-aware cost model routes high-degree frontiers through a
/// prebuilt-state strategy, and a zero-churn profile reproduces the
/// default pricing bit-for-bit.
#[test]
fn resident_state_serves_steps_and_zero_churn_is_default_pricing() {
    let run = |churn: Option<ChurnProfile>| {
        let b = state_session(1, Topology::Single, SelectionStrategy::CostModel);
        let b = match churn {
            Some(c) => b.churn(c),
            None => b,
        };
        let mut session = b.build();
        let g = session.load_graph(wgraph(13));
        // Start every walk on a hub so the priced frontier is
        // high-degree where prebuilt state wins the argmin.
        let queries: Vec<NodeId> = (0..64).map(|i| (i % HUBS as u64) as NodeId).collect();
        session
            .run(
                WalkRequest::new(&g, "uniform", queries)
                    .steps(8)
                    .record_paths(true),
            )
            .expect("serves")
    };
    let report = run(None);
    let stateful_steps = report.sampler_steps.get(sampler_ids::ALS)
        + report.sampler_steps.get(sampler_ids::ITS)
        + report.sampler_steps.get(sampler_ids::TCDF);
    assert!(
        stateful_steps > 0,
        "hub frontiers must route through resident state: {:?}",
        report.sampler_steps
    );
    assert!(report.sampler_state_builds > 0);
    // ChurnProfile::default() prices updates at zero refreshes per step —
    // exactly the read-only argmin.
    let zero_churn = run(Some(ChurnProfile::default()));
    assert_eq!(record(&report), record(&zero_churn));
}
