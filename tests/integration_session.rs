//! The session API's contract: batch-split determinism, preparation
//! caching, and the pluggable-sampler registry round-trip.

use flexiwalker::prelude::*;
use flexiwalker::sampling::kernels::NeighborView;
use flexiwalker::sampling::{CostInputs, ScalarCost};
use std::sync::Arc;

fn graph() -> Csr {
    let g = gen::rmat(9, 4096, gen::RmatParams::SOCIAL, 123);
    WeightModel::UniformReal.apply(g, 123)
}

/// Paths of every query in submission order, concatenated.
fn all_paths(batches: Vec<(Ticket, Result<RunReport, EngineError>)>) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    for (_, r) in batches {
        out.extend(r.expect("run").paths.expect("recorded"));
    }
    out
}

#[test]
fn one_submit_equals_two_submits_with_same_seed() {
    // The headline batching guarantee: same seed ⇒ identical paths
    // regardless of how the query set is split across submissions (and
    // regardless of handle identity — only content and seed matter).
    let w = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..96).collect();

    let mut whole_session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let g = whole_session.load_graph(graph());
    whole_session.submit(
        WalkRequest::new(&g, &w, &queries)
            .steps(12)
            .record_paths(true),
    );
    let whole = all_paths(whole_session.drain());

    let mut split_session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let g = split_session.load_graph(graph());
    split_session.submit(
        WalkRequest::new(&g, &w, &queries[..32])
            .steps(12)
            .record_paths(true),
    );
    split_session.submit(
        WalkRequest::new(&g, &w, &queries[32..])
            .steps(12)
            .record_paths(true),
    );
    let split = all_paths(split_session.drain());

    assert_eq!(whole, split, "batch split changed walk paths");
}

#[test]
fn submits_can_interleave_with_drains() {
    // Draining between submissions must not change the cumulative query
    // stream either.
    let w = SecondOrderPr::paper();
    let queries: Vec<NodeId> = (0..48).collect();

    let mut batched = FlexiWalker::builder().build();
    let g = batched.load_graph(graph());
    batched.submit(
        WalkRequest::new(&g, &w, &queries)
            .steps(8)
            .record_paths(true),
    );
    let together = all_paths(batched.drain());

    let mut interleaved = FlexiWalker::builder().build();
    let g = interleaved.load_graph(graph());
    let mut collected = Vec::new();
    for chunk in queries.chunks(16) {
        interleaved.submit(WalkRequest::new(&g, &w, chunk).steps(8).record_paths(true));
        collected.extend(all_paths(interleaved.drain()));
    }
    assert_eq!(together, collected);
}

#[test]
fn session_caches_preparation_across_submissions() {
    let w = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..32).collect();
    let mut session = FlexiWalker::builder().build();
    let g = session.load_graph(graph());

    let first = session
        .run(WalkRequest::new(&g, &w, &queries).steps(6))
        .unwrap();
    assert!(first.profile_seconds > 0.0, "first run profiles");
    assert!(first.preprocess_seconds > 0.0, "first run preprocesses");

    let second = session
        .run(WalkRequest::new(&g, &w, &queries).steps(6))
        .unwrap();
    assert_eq!(second.profile_seconds, 0.0, "profile served from cache");
    assert_eq!(
        second.preprocess_seconds, 0.0,
        "aggregates served from cache"
    );

    // A different graph misses the cache again.
    let g2 = session
        .load_graph(WeightModel::UniformReal.apply(gen::rmat(8, 2048, gen::RmatParams::WEB, 9), 9));
    let third = session
        .run(WalkRequest::new(&g2, &w, &queries).steps(6))
        .unwrap();
    assert!(third.profile_seconds > 0.0, "new graph re-profiles");
    // Exactly one digest per loaded graph, however many drains ran.
    assert_eq!(session.stats().digests_computed, 2);
}

/// A deterministic linear-CDF strategy under a made-up id, priced to win
/// every selection — the "bring your own sampler" round-trip.
#[derive(Debug)]
struct TeleportSampler;

impl Sampler for TeleportSampler {
    fn id(&self) -> SamplerId {
        "teleport"
    }

    fn granularity(&self) -> Granularity {
        Granularity::Warp
    }

    fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
        Some(inp.deg * 1e-6)
    }

    fn sample_warp(
        &self,
        ctx: &mut flexiwalker::gpu_sim::WarpCtx,
        view: &NeighborView<'_>,
    ) -> Option<usize> {
        ctx.read_coalesced(view.deg * view.bytes_per_weight);
        let total: f64 = (0..view.deg)
            .map(|i| f64::from((view.weight)(i).max(0.0)))
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = ctx.draw_f64(0) * total;
        for i in 0..view.deg {
            let wi = f64::from((view.weight)(i).max(0.0));
            if wi <= 0.0 {
                continue;
            }
            target -= wi;
            if target <= 0.0 {
                return Some(i);
            }
        }
        (0..view.deg).rev().find(|&i| (view.weight)(i) > 0.0)
    }

    fn sample_scalar(
        &self,
        weights: &[f32],
        _bound: Option<f32>,
        rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost) {
        flexiwalker::sampling::scalar::sample_linear_cdf(weights, &mut { rng })
    }
}

#[test]
fn registered_custom_sampler_is_selected_and_reported() {
    let w = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..64).collect();
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .register_sampler(Arc::new(TeleportSampler))
        .build();
    let g = session.load_graph(graph());
    let csr = g.graph();
    assert!(session.engine().registry().contains("teleport"));

    let report = session
        .run(
            WalkRequest::new(&g, &w, &queries)
                .steps(10)
                .record_paths(true),
        )
        .unwrap();
    // Flexi-Runtime's cost model selected the third-party strategy, and the
    // report keys its steps by the custom id.
    assert!(
        report.sampler_steps.get("teleport") > 0,
        "custom sampler never selected: {}",
        report.sampler_steps
    );
    assert_eq!(report.sampler_steps.total(), report.steps_taken);
    // And the walks it produced are real walks.
    for path in report.paths.as_ref().unwrap() {
        for pair in path.windows(2) {
            assert!(csr.has_edge(pair[0], pair[1]));
        }
    }
}

#[test]
fn forced_custom_sampler_strategy_works_too() {
    let w = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..32).collect();
    let mut session = FlexiWalker::builder()
        .strategy(SelectionStrategy::Only("teleport"))
        .register_sampler(Arc::new(TeleportSampler))
        .build();
    let g = session.load_graph(graph());
    let report = session
        .run(WalkRequest::new(&g, &w, &queries).steps(8))
        .unwrap();
    assert_eq!(
        report.sampler_steps.get("teleport"),
        report.steps_taken,
        "Only(..) must route every step through the named sampler"
    );
}

#[test]
fn tickets_are_stable_handles() {
    let w = UniformWalk;
    let q1: Vec<NodeId> = (0..8).collect();
    let q2: Vec<NodeId> = (8..24).collect();
    let mut session = FlexiWalker::builder().build();
    let g = session.load_graph(graph());
    let t1 = session.submit(WalkRequest::new(&g, &w, &q1).steps(4));
    let t2 = session.submit(WalkRequest::new(&g, &w, &q2).steps(4));
    assert_ne!(t1, t2);
    assert_eq!(session.pending(), 2);
    let results = session.drain();
    assert_eq!(session.pending(), 0);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].0, t1);
    assert_eq!(results[1].0, t2);
    assert_eq!(results[0].1.as_ref().unwrap().queries, 8);
    assert_eq!(results[1].1.as_ref().unwrap().queries, 16);
}
