//! Executor determinism: `Session::drain` output is bit-identical at
//! every worker count — including when a drain covers several graphs at
//! different epochs, and when `apply_updates` lands mid-stream between
//! submissions.
//!
//! Proptest-style: a seeded sweep generates scripted sessions (random
//! submission sizes, workload mix, update batches) and replays each
//! script at `workers ∈ {1, 2, 4, 8}`, comparing full per-ticket
//! transcripts bit-for-bit.

use flexiwalker::prelude::*;
use std::sync::Arc;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn graph(seed: u64) -> Csr {
    let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, seed);
    WeightModel::UniformReal.apply(g, seed)
}

/// Deterministic per-seed script randomness (splitmix64 step).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything observable about one drained ticket, with floats as bits so
/// equality is exact.
#[derive(Debug, PartialEq)]
struct TicketRecord {
    ticket: usize,
    /// `(dense graph index, epoch)`: graph ids are a process-global
    /// counter, so two sessions in one test process never see the same
    /// raw ids — they are normalised to first-appearance order, which is
    /// deterministic because the transcript is in submission order.
    graph_version: (u64, u64),
    sim_seconds: u64,
    saturated_seconds: u64,
    profile_seconds: u64,
    preprocess_seconds: u64,
    queries: usize,
    steps_taken: u64,
    paths: Option<Vec<Vec<NodeId>>>,
    sampler_steps: Vec<(String, u64)>,
}

fn record(ticket: Ticket, report: &RunReport) -> TicketRecord {
    TicketRecord {
        ticket: ticket.id(),
        graph_version: (report.graph_version.graph_id, report.graph_version.epoch),
        sim_seconds: report.sim_seconds.to_bits(),
        saturated_seconds: report.saturated_seconds.to_bits(),
        profile_seconds: report.profile_seconds.to_bits(),
        preprocess_seconds: report.preprocess_seconds.to_bits(),
        queries: report.queries,
        steps_taken: report.steps_taken,
        paths: report.paths.clone(),
        sampler_steps: report
            .sampler_steps
            .iter()
            .map(|(id, n)| (id.to_string(), n))
            .collect(),
    }
}

fn drain_records(session: &mut Session) -> Vec<TicketRecord> {
    session
        .drain()
        .into_iter()
        .map(|(t, r)| record(t, &r.expect("drain succeeds")))
        .collect()
}

/// One update batch derived from the script stream: a new edge plus a
/// reweighted existing one.
fn update_batch(rng: &mut u64, g: &GraphHandle) -> Vec<GraphUpdate> {
    let csr = g.graph();
    let n = csr.num_nodes() as u64;
    vec![
        GraphUpdate::AddEdge {
            src: (mix(rng) % n) as NodeId,
            dst: (mix(rng) % n) as NodeId,
            weight: 1.0 + (mix(rng) % 8) as f32,
            label: 0,
        },
        GraphUpdate::SetWeight {
            edge: (mix(rng) % csr.num_edges() as u64) as usize,
            weight: 0.5 + (mix(rng) % 4) as f32,
        },
    ]
}

/// Replays one scripted session at `workers` and returns the transcript:
/// two graphs, randomised submissions, a mid-stream update between the
/// two drains, and a second update that splits epochs *within* the final
/// drain (graph A advances, graph B stays put).
fn run_script(script_seed: u64, workers: usize) -> (Vec<TicketRecord>, SessionStats) {
    let mut rng = script_seed;
    let workloads: [Arc<dyn flexiwalker::core::DynamicWalk>; 3] = [
        Arc::new(Node2Vec::paper(true)),
        Arc::new(SecondOrderPr::paper()),
        Arc::new(UniformWalk),
    ];
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(workers)
        .build();
    let a = session.load_graph(graph(script_seed));
    let b = session.load_graph(graph(script_seed + 101));
    let mut transcript = Vec::new();

    let submit = |session: &mut Session, rng: &mut u64, g: &GraphHandle| {
        let csr = g.graph();
        let count = 8 + (mix(rng) % 25) as usize;
        let start = mix(rng) % csr.num_nodes() as u64;
        let queries: Vec<NodeId> = (0..count)
            .map(|i| ((start + i as u64) % csr.num_nodes() as u64) as NodeId)
            .collect();
        let w = Arc::clone(&workloads[(mix(rng) % 3) as usize]);
        let steps = 4 + (mix(rng) % 5) as usize;
        session.submit(
            WalkRequest::new(g, w, queries)
                .steps(steps)
                .record_paths(true),
        );
    };

    // Drain 1: both graphs at epoch 0.
    for _ in 0..2 + (mix(&mut rng) % 3) {
        let g = if mix(&mut rng) % 2 == 0 { &a } else { &b };
        submit(&mut session, &mut rng, g);
    }
    transcript.extend(drain_records(&mut session));

    // Mid-stream update: both graphs advance to epoch 1.
    for g in [&a, &b] {
        let batch = update_batch(&mut rng, g);
        session.apply_updates(g, &batch).expect("update applies");
    }

    // Drain 2: submissions straddle one more update to A only, so the
    // drain covers A@e2 and B@e1 concurrently — two batch groups, no
    // cross-talk.
    submit(&mut session, &mut rng, &a);
    submit(&mut session, &mut rng, &b);
    let batch = update_batch(&mut rng, &a);
    session.apply_updates(&a, &batch).expect("update applies");
    submit(&mut session, &mut rng, &a);
    submit(&mut session, &mut rng, &b);
    transcript.extend(drain_records(&mut session));

    // Normalise the process-global graph ids to first-appearance order.
    let mut dense: Vec<u64> = Vec::new();
    for r in &mut transcript {
        let idx = match dense.iter().position(|&id| id == r.graph_version.0) {
            Some(i) => i,
            None => {
                dense.push(r.graph_version.0);
                dense.len() - 1
            }
        };
        r.graph_version.0 = idx as u64;
    }
    (transcript, session.stats())
}

#[test]
fn drain_is_bit_identical_across_worker_counts() {
    for script_seed in [3u64, 17, 29, 42] {
        let (reference, ref_stats) = run_script(script_seed, 1);
        assert!(!reference.is_empty());
        // The final drain mixes two graphs at different epochs.
        assert!(ref_stats.drain_groups >= 3, "stats: {ref_stats:?}");
        for workers in &WORKER_SWEEP[1..] {
            let (transcript, stats) = run_script(script_seed, *workers);
            assert_eq!(
                transcript, reference,
                "seed {script_seed}: workers {workers} diverged from sequential drain"
            );
            // Cache behaviour is also scheduling-independent: the prepare
            // pass is sequential at every worker count.
            assert_eq!(stats.digests_computed, ref_stats.digests_computed);
            assert_eq!(stats.aggregates_built, ref_stats.aggregates_built);
            assert_eq!(stats.profiles_run, ref_stats.profiles_run);
            assert_eq!(stats.drain_groups, ref_stats.drain_groups);
            // Every request was executed by exactly one worker slot.
            assert_eq!(
                stats.worker_requests.iter().sum::<u64>(),
                ref_stats.worker_requests.iter().sum::<u64>(),
                "request count must not depend on worker count"
            );
        }
    }
}

#[test]
fn multi_worker_drain_reports_parallel_stats() {
    let w = Node2Vec::paper(true);
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(4)
        .build();
    assert_eq!(session.workers(), 4);
    let g = session.load_graph(graph(7));
    for chunk in (0..64u32).collect::<Vec<_>>().chunks(16) {
        session.submit(WalkRequest::new(&g, &w, chunk).steps(5));
    }
    let results = session.drain();
    assert_eq!(results.len(), 4);
    let stats = session.stats();
    assert_eq!(stats.parallel_drains, 1, "4 jobs across 4 workers");
    assert_eq!(stats.drain_groups, 1, "one graph, one epoch, one device");
    assert_eq!(stats.worker_requests.iter().sum::<u64>(), 4);
    assert!(stats.worker_requests.len() > 1);
}

#[test]
fn single_worker_session_never_goes_parallel() {
    let w = UniformWalk;
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(1)
        .build();
    let g = session.load_graph(graph(11));
    for chunk in (0..32u32).collect::<Vec<_>>().chunks(8) {
        session.submit(WalkRequest::new(&g, &w, chunk).steps(4));
    }
    session.drain();
    let stats = session.stats();
    assert_eq!(stats.parallel_drains, 0);
    assert_eq!(stats.worker_requests, vec![4]);
}

#[test]
fn workers_zero_is_clamped_to_sequential() {
    let session = FlexiWalker::builder().workers(0).build();
    assert_eq!(session.workers(), 1);
}

/// A budget that expires *between* the shard launches and the merged
/// total must not lose the migration census: the launches fit the
/// budget, the census's link seconds push the job over, and the session
/// still accounts the traffic the simulation charged.
#[test]
fn partitioned_timeout_after_census_keeps_migration_stats() {
    let csr = graph(13);
    let queries: Vec<NodeId> = (0..32).collect();
    let run = |budget: Option<f64>| {
        let mut session = FlexiWalker::builder()
            .device(DeviceSpec::tiny())
            .topology(Topology::partitioned(2))
            .build();
        let g = session.load_graph(csr.clone());
        let mut req = WalkRequest::new(&g, "node2vec", queries.clone())
            .steps(10)
            .record_paths(true);
        if let Some(b) = budget {
            req = req.time_budget(b);
        }
        session.submit(req);
        let mut drained = session.drain();
        (drained.pop().expect("one ticket").1, session.stats())
    };

    let (ok, full_stats) = run(None);
    let report = ok.expect("generous budget succeeds");
    let shards = report.shards.expect("partitioned run carries shard stats");
    assert!(shards.migrations > 0, "test premise: walkers must migrate");
    assert!(shards.link_seconds > 0.0);
    // The merged simulated time is the slowest shard launch plus the
    // migration link seconds; a budget between the two passes every
    // launch but trips the post-census check.
    let launch_sim = report.sim_seconds - shards.link_seconds;
    let budget = launch_sim + shards.link_seconds * 0.5;

    let (err, stats) = run(Some(budget));
    assert!(
        matches!(err, Err(EngineError::OutOfTime { .. })),
        "bracketed budget must expire after the census: {err:?}"
    );
    // The satellite bugfix under test: the charged census survives the
    // error path, bit-identical to the successful run's accounting.
    assert_eq!(stats.migrations, full_stats.migrations);
    assert_eq!(
        stats.link_seconds.to_bits(),
        full_stats.link_seconds.to_bits()
    );
}

/// Same invariant on the out-of-core path: a budget that expires after
/// the block replay charged its disk time must keep the block-cache
/// counters the replay accumulated.
#[test]
fn out_of_core_timeout_after_replay_keeps_block_stats() {
    let csr = graph(9);
    let queries: Vec<NodeId> = (0..32).collect();
    let run = |budget: Option<f64>| {
        let mut session = FlexiWalker::builder()
            .device(DeviceSpec::tiny())
            .topology(Topology::out_of_core(8192, 4096))
            .build();
        let g = session.load_graph(csr.clone());
        let mut req = WalkRequest::new(&g, "node2vec", queries.clone()).steps(8);
        if let Some(b) = budget {
            req = req.time_budget(b);
        }
        session.submit(req);
        let mut drained = session.drain();
        (drained.pop().expect("one ticket").1, session.stats())
    };

    let (ok, full_stats) = run(None);
    let report = ok.expect("generous budget succeeds");
    let blocks = report.blocks.expect("out-of-core run carries block stats");
    assert!(blocks.loads > 0, "test premise: the replay must touch disk");
    assert!(blocks.io_seconds > 0.0);
    let launch_sim = report.sim_seconds - blocks.io_seconds;
    let budget = launch_sim + blocks.io_seconds * 0.5;

    let (err, stats) = run(Some(budget));
    assert!(
        matches!(err, Err(EngineError::OutOfTime { .. })),
        "bracketed budget must expire after the replay: {err:?}"
    );
    assert_eq!(stats.block_loads, full_stats.block_loads);
    assert_eq!(stats.block_hits, full_stats.block_hits);
    assert_eq!(stats.block_evictions, full_stats.block_evictions);
}

/// Every drained ticket records exactly one latency sample, and the
/// histogram keeps accumulating across drains.
#[test]
fn drain_records_one_latency_sample_per_ticket() {
    let w = UniformWalk;
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(4)
        .build();
    let g = session.load_graph(graph(19));
    for chunk in (0..48u32).collect::<Vec<_>>().chunks(8) {
        session.submit(WalkRequest::new(&g, &w, chunk).steps(4));
    }
    let drained = session.drain();
    assert_eq!(drained.len(), 6);
    assert_eq!(session.stats().latency.count(), 6);

    for chunk in (0..16u32).collect::<Vec<_>>().chunks(8) {
        session.submit(WalkRequest::new(&g, &w, chunk).steps(4));
    }
    session.drain();
    let stats = session.stats();
    assert_eq!(stats.latency.count(), 8);
    assert!(stats.latency.max() > 0.0);
}

/// Per-stage timing accumulates with every drain and never claims more
/// unhidden tail than there was merge-side work.
#[test]
fn drain_accumulates_stage_timing() {
    let w = Node2Vec::paper(true);
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(2)
        .build();
    let g = session.load_graph(graph(23));
    for chunk in (0..32u32).collect::<Vec<_>>().chunks(8) {
        session.submit(WalkRequest::new(&g, &w, chunk).steps(6));
    }
    session.drain();
    let first = session.stats().stages;
    assert!(first.wall_seconds > 0.0);
    assert!(first.launch_seconds > 0.0);
    assert!(first.prepare_seconds > 0.0);
    assert!(first.merge_tail_seconds <= first.merge_work_seconds() + 1e-9);

    session.submit(WalkRequest::new(&g, &w, (0..8u32).collect::<Vec<_>>()).steps(6));
    session.drain();
    let second = session.stats().stages;
    assert!(second.wall_seconds > first.wall_seconds);
    assert!(second.launch_seconds > first.launch_seconds);
}
