//! Temporal differential sweep: time-windowed and time-biased walks are
//! **bit-identical** across worker counts and topologies, DSL twins match
//! their native walkers through the full session pipeline, and a
//! [`WalkServer`] interleaving timestamped ingest serves exactly what an
//! offline [`Session`] drains at the same epoch. Every recorded path is
//! checked forward-in-time against the graph it traversed.

use flexiwalker::prelude::*;
use std::sync::Arc;

/// Deterministic per-seed script randomness (splitmix64 step).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const NODES: usize = 192;

/// A timestamped scale-free-ish graph: every node gets a couple of
/// outgoing edges so walks rarely strand, timestamps span `[0, 1000)`.
fn tgraph(seed: u64) -> Csr {
    let mut rng = seed;
    let mut b = CsrBuilder::new(NODES);
    for src in 0..NODES as NodeId {
        for _ in 0..2 + (mix(&mut rng) % 3) {
            let dst = (mix(&mut rng) % NODES as u64) as NodeId;
            let w = 0.5 + (mix(&mut rng) % 8) as f32;
            let time = mix(&mut rng) % 1000;
            b.push_full_at(src, dst, w, (mix(&mut rng) % 4) as u8, time);
        }
    }
    b.build().expect("valid timestamped graph")
}

/// One scripted command; pure data, so the served and offline runs replay
/// the exact same stream.
#[derive(Clone, Debug)]
enum Step {
    Walk {
        walker: &'static str,
        queries: Vec<NodeId>,
        steps: usize,
        window: Option<TimeWindow>,
    },
    Update {
        batch: Vec<GraphUpdate>,
    },
}

/// A mixed temporal script: bursts of time-biased walks (some windowed)
/// with timestamped-ingest batches interleaved mid-stream.
fn script(seed: u64) -> Vec<Step> {
    let mut rng = seed;
    let walkers = ["temporal_uniform", "temporal_exp", "temporal_linear"];
    let mut steps = Vec::new();
    for burst in 0..3 {
        for _ in 0..2 + (mix(&mut rng) % 2) {
            let count = 8 + (mix(&mut rng) % 9) as usize;
            let start = mix(&mut rng) % NODES as u64;
            let window = match mix(&mut rng) % 3 {
                0 => None,
                1 => Some(TimeWindow::since(mix(&mut rng) % 500)),
                _ => {
                    let t0 = mix(&mut rng) % 400;
                    Some(TimeWindow::new(t0, t0 + 300 + mix(&mut rng) % 300))
                }
            };
            steps.push(Step::Walk {
                walker: walkers[(mix(&mut rng) % 3) as usize],
                queries: (0..count)
                    .map(|i| ((start + i as u64) % NODES as u64) as NodeId)
                    .collect(),
                steps: 4 + (mix(&mut rng) % 4) as usize,
                window,
            });
        }
        if burst < 2 {
            // Timestamped ingest: edges land with fresh (monotone-ish)
            // stamps, exercising the mask/plan migration path.
            steps.push(Step::Update {
                batch: (0..4)
                    .map(|_| GraphUpdate::AddEdgeAt {
                        src: (mix(&mut rng) % NODES as u64) as NodeId,
                        dst: (mix(&mut rng) % NODES as u64) as NodeId,
                        weight: 1.0 + (mix(&mut rng) % 4) as f32,
                        label: 0,
                        time: 800 + mix(&mut rng) % 200,
                    })
                    .collect(),
            });
        }
    }
    steps
}

/// Everything observable about one walk, floats as bits so equality is
/// exact.
#[derive(Debug, PartialEq)]
struct WalkRecord {
    epoch: u64,
    queries: usize,
    steps_taken: u64,
    sim_seconds: u64,
    paths: Option<Vec<Vec<NodeId>>>,
}

fn record(report: &RunReport) -> WalkRecord {
    WalkRecord {
        epoch: report.graph_version.epoch,
        queries: report.queries,
        steps_taken: report.steps_taken,
        sim_seconds: report.sim_seconds.to_bits(),
        paths: report.paths.clone(),
    }
}

fn request(g: &GraphHandle, step: &Step) -> WalkRequest {
    let Step::Walk {
        walker,
        queries,
        steps,
        window,
    } = step
    else {
        panic!("not a walk step")
    };
    let req = WalkRequest::new(g, *walker, queries.clone())
        .steps(*steps)
        .record_paths(true);
    match window {
        Some(w) => req.window(*w),
        None => req,
    }
}

fn session_builder(workers: usize, topology: Topology, dsl_twins: bool) -> SessionBuilder {
    let b = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(workers)
        .topology(topology)
        .register_sampler(Arc::new(TcdfSampler));
    if dsl_twins {
        b.walker_registry(WalkerRegistry::builtin_dsl())
    } else {
        b
    }
}

/// Replays the script through a batch `Session`, draining at every update
/// boundary — the reference every other run is compared against.
fn offline_run(seed: u64, workers: usize, topology: Topology, dsl_twins: bool) -> Vec<WalkRecord> {
    let mut session = session_builder(workers, topology, dsl_twins).build();
    let g = session.load_graph(tgraph(seed));
    let mut records = Vec::new();
    let drain = |session: &mut Session, records: &mut Vec<WalkRecord>| {
        records.extend(
            session
                .drain()
                .into_iter()
                .map(|(_, r)| record(&r.expect("drain succeeds"))),
        );
    };
    for step in script(seed) {
        match &step {
            Step::Walk { .. } => {
                session.submit(request(&g, &step));
            }
            Step::Update { batch } => {
                drain(&mut session, &mut records);
                session.apply_updates(&g, batch).expect("update applies");
            }
        }
    }
    drain(&mut session, &mut records);
    assert!(session.stats().epochs_applied >= 2);
    records
}

/// Serves the same script through a `WalkServer`, timestamped ingest
/// interleaved with windowed walk requests.
fn serve_run(seed: u64, workers: usize, topology: Topology) -> (Vec<WalkRecord>, ServerStats) {
    let server = WalkServer::builder()
        .session(session_builder(workers, topology, false))
        .batch_max(4)
        .serve();
    let g = GraphHandle::new(tgraph(seed));
    let mut walk_tickets = Vec::new();
    let mut update_tickets = Vec::new();
    for step in script(seed) {
        match &step {
            Step::Walk { .. } => {
                walk_tickets.push(server.submit(request(&g, &step)).expect("admitted"));
            }
            Step::Update { batch } => {
                update_tickets.push(server.apply_updates(&g, batch.clone()).expect("admitted"));
            }
        }
    }
    for t in update_tickets {
        t.wait().expect("ingest applies");
    }
    let records = walk_tickets
        .into_iter()
        .map(|t| record(&t.wait().expect("served")))
        .collect();
    (records, server.shutdown())
}

/// Checks a recorded path is realisable forward-in-time inside `window`:
/// greedily assigns each hop the earliest admissible parallel edge — the
/// walk clock never runs backwards and never leaves the window.
fn assert_forward_in_time(g: &Csr, path: &[NodeId], window: Option<TimeWindow>) {
    let w = window.unwrap_or_else(TimeWindow::all);
    let mut clock = w.t0;
    for hop in path.windows(2) {
        let (cur, next) = (hop[0], hop[1]);
        let t = g
            .edge_range(cur)
            .filter(|&e| g.edge_target(e) == next && w.contains(g.time(e)) && g.time(e) >= clock)
            .map(|e| g.time(e))
            .min();
        let t = t.unwrap_or_else(|| {
            panic!("hop {cur}->{next} has no admissible edge at clock {clock} in {w}")
        });
        clock = t;
    }
}

/// The acceptance sweep: temporal walks are bit-identical across
/// `workers × topology`, the DSL twins reproduce the native walkers
/// exactly, and the served stream equals the offline drains — all over
/// the same timestamped-ingest script.
#[test]
fn temporal_walks_bit_identical_across_workers_topologies_and_serving() {
    let seed = 17u64;
    let topologies = [
        Topology::Single,
        Topology::MultiDevice { devices: 2 },
        Topology::Partitioned {
            devices: 2,
            link: LinkSpec::nvlink(),
        },
    ];
    // Walk output (paths) is invariant across topologies; the full
    // record — simulated timing included — is invariant across worker
    // counts and serving *within* a topology.
    let path_reference: Vec<_> = offline_run(seed, 1, Topology::Single, false)
        .into_iter()
        .map(|r| r.paths)
        .collect();
    for topology in topologies {
        let reference = offline_run(seed, 1, topology, false);
        assert!(
            reference.iter().any(|r| r.epoch > 0),
            "script must span epochs"
        );
        assert_eq!(
            reference
                .iter()
                .map(|r| r.paths.clone())
                .collect::<Vec<_>>(),
            path_reference,
            "paths diverged across topologies ({topology:?})"
        );
        for workers in [1usize, 2, 4, 8] {
            let offline = offline_run(seed, workers, topology, false);
            assert_eq!(
                offline, reference,
                "offline temporal drains diverged (workers {workers}, {topology:?})"
            );
            let twins = offline_run(seed, workers, topology, true);
            assert_eq!(
                twins, reference,
                "DSL twins diverged from native walkers (workers {workers}, {topology:?})"
            );
            let (served, stats) = serve_run(seed, workers, topology);
            assert_eq!(
                served, reference,
                "served temporal walks diverged (workers {workers}, {topology:?})"
            );
            assert_eq!(stats.served as usize, reference.len());
            assert_eq!(stats.updates_applied, 2);
            assert_eq!(stats.session.epochs_applied, 2);
        }
    }
}

/// Every path emitted by the sweep script is realisable forward-in-time
/// within its request window — at the epoch it was served from.
#[test]
fn recorded_temporal_paths_respect_clocks_and_windows() {
    let seed = 29u64;
    let mut session = session_builder(2, Topology::Single, false).build();
    let g = session.load_graph(tgraph(seed));
    // (window, paths, graph-at-service-time) per request, in drain order.
    let mut checked = 0usize;
    let mut pending: Vec<Option<TimeWindow>> = Vec::new();
    let g2 = g.clone();
    let drain =
        |session: &mut Session, pending: &mut Vec<Option<TimeWindow>>, checked: &mut usize| {
            // Drain happens *before* the next ingest batch, so the handle
            // still shows the graph these walks were served from.
            let snapshot = g2.graph();
            for ((_, r), window) in session.drain().into_iter().zip(pending.drain(..)) {
                let report = r.expect("drain succeeds");
                for path in report.paths.as_ref().expect("recorded") {
                    assert!(!path.is_empty());
                    assert_forward_in_time(&snapshot, path, window);
                    *checked += 1;
                }
            }
        };
    for step in script(seed) {
        match &step {
            Step::Walk { window, .. } => {
                session.submit(request(&g, &step));
                pending.push(*window);
            }
            Step::Update { batch } => {
                drain(&mut session, &mut pending, &mut checked);
                session.apply_updates(&g, batch).expect("update applies");
            }
        }
    }
    drain(&mut session, &mut pending, &mut checked);
    assert!(checked > 50, "sweep exercised plenty of paths ({checked})");
}

/// The temporal CDF strategy slots into the runtime like any other
/// registry entry: forced via `SelectionStrategy::Only`, it serves the
/// whole script and its steps land in the per-sampler tally.
#[test]
fn tcdf_sampler_serves_temporal_walks_when_selected() {
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .register_sampler(Arc::new(TcdfSampler))
        .strategy(SelectionStrategy::Only(sampler_ids::TCDF))
        .build();
    let g = session.load_graph(tgraph(3));
    let queries: Vec<NodeId> = (0..64).collect();
    let report = session
        .run(
            WalkRequest::new(&g, "temporal_exp", queries)
                .steps(8)
                .window(TimeWindow::since(100))
                .record_paths(true),
        )
        .expect("tcdf serves");
    assert!(report.sampler_steps.get(sampler_ids::TCDF) >= report.steps_taken);
    assert_eq!(report.sampler_steps.get(sampler_ids::ERVS), 0);
    assert_eq!(report.sampler_steps.get(sampler_ids::ERJS), 0);
    let csr = g.graph();
    for path in report.paths.as_ref().unwrap() {
        assert_forward_in_time(&csr, path, Some(TimeWindow::since(100)));
    }
}

/// Windows genuinely bind: a window past every timestamp strands walks at
/// their start nodes, the full window reproduces the unwindowed run
/// bit-for-bit (mask short-circuit), and disjoint windows disagree.
#[test]
fn windows_select_different_temporal_slices() {
    // A fresh session per run: the per-query RNG stream advances with
    // every submission, so only runs replayed from the same session
    // state are comparable.
    let run = |window: Option<TimeWindow>| {
        let mut session = session_builder(1, Topology::Single, false).build();
        let g = session.load_graph(tgraph(11));
        let req = WalkRequest::new(&g, "temporal_uniform", (0..32).collect::<Vec<NodeId>>())
            .steps(6)
            .record_paths(true);
        let req = match window {
            Some(w) => req.window(w),
            None => req,
        };
        session.run(req).expect("serves")
    };
    let empty = run(Some(TimeWindow::since(5000)));
    assert_eq!(empty.steps_taken, 0, "no edge is live past every stamp");
    assert!(empty.paths.unwrap().iter().all(|p| p.len() == 1));
    let unwindowed = run(None);
    let full = run(Some(TimeWindow::all()));
    assert_eq!(record(&unwindowed), record(&full));
    let early = run(Some(TimeWindow::until(500)));
    let late = run(Some(TimeWindow::since(500)));
    assert_ne!(
        early.paths, late.paths,
        "disjoint windows see disjoint slices"
    );
}
