//! Integration of Flexi-Compiler with the runtime: generated estimators
//! must soundly bound the weights the engine actually computes, and the
//! fallback path must stay correct.

use flexiwalker::compiler::{compile, BoundGranularity, CompileOutcome, WalkSpec};
use flexiwalker::core::preprocess::Aggregates;
use flexiwalker::core::runtime::RuntimeEnv;
use flexiwalker::prelude::*;
use flexiwalker::sampling::stat;

fn graph() -> Csr {
    let g = gen::rmat(9, 4096, gen::RmatParams::WEB, 31);
    WeightModel::Pareto { alpha: 1.5 }.apply(g, 31)
}

fn compiled_for(w: &dyn DynamicWalk) -> flexiwalker::compiler::CompiledWalk {
    match compile(&w.spec()).expect("parses") {
        CompileOutcome::Supported(c) => *c,
        CompileOutcome::Fallback { warnings } => panic!("unexpected fallback: {warnings:?}"),
    }
}

#[test]
fn bound_estimators_dominate_actual_weights_for_all_workloads() {
    let g = flexiwalker::graph::props::assign_uniform_labels(graph(), 5, 31);
    let workloads: Vec<Box<dyn DynamicWalk>> = vec![
        Box::new(Node2Vec::paper(true)),
        Box::new(Node2Vec::paper(false)),
        Box::new(MetaPath::paper(true)),
        Box::new(SecondOrderPr::paper()),
    ];
    for w in &workloads {
        let compiled = compiled_for(w.as_ref());
        let agg = Aggregates::compute(&g, &compiled.preprocess, &DeviceSpec::a6000());
        let mut checked = 0usize;
        for cur in (0..g.num_nodes() as u32).step_by(7) {
            if g.degree(cur) == 0 {
                continue;
            }
            for prev in [None, Some((cur + 1) % g.num_nodes() as u32)] {
                for step in [0usize, 1, 3] {
                    let state = WalkState {
                        cur,
                        prev,
                        step,
                        time: 0,
                    };
                    let env = RuntimeEnv {
                        graph: &g,
                        aggregates: &agg,
                        workload: w.as_ref(),
                        state,
                    };
                    let Some(bound) = compiled.max_estimator.eval(&env) else {
                        panic!("{}: estimator unavailable", w.name());
                    };
                    for e in g.edge_range(cur) {
                        let actual = f64::from(w.weight(&g, &state, e));
                        // Relative tolerance: estimator math is f64 over
                        // f32 inputs; the engine adds the same slack to the
                        // kernel bound (`rjs_bound`'s SLACK).
                        assert!(
                            bound * (1.0 + 1e-5) >= actual,
                            "{}: bound {bound} < weight {actual} at node {cur}",
                            w.name()
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000, "{}: too few checks ({checked})", w.name());
    }
}

#[test]
fn granularity_flags_match_paper_classification() {
    assert_eq!(
        compiled_for(&Node2Vec::paper(false)).flag,
        BoundGranularity::PerKernel,
        "unweighted Node2Vec needs a single estimation (paper §3.3)"
    );
    for w in [
        Box::new(Node2Vec::paper(true)) as Box<dyn DynamicWalk>,
        Box::new(MetaPath::paper(true)),
        Box::new(SecondOrderPr::paper()),
    ] {
        assert_eq!(
            compiled_for(w.as_ref()).flag,
            BoundGranularity::PerStep,
            "{} must re-estimate per step",
            w.name()
        );
    }
}

/// A workload whose DSL source Flexi-Compiler must reject (data-dependent
/// loop), exercising the engine's eRVS-only fallback end to end.
#[derive(Clone, Copy)]
struct HostileWorkload;

impl DynamicWalk for HostileWorkload {
    fn name(&self) -> &'static str {
        "hostile"
    }

    fn weight(&self, g: &Csr, _st: &WalkState, edge: usize) -> f32 {
        g.prop(edge)
    }

    fn spec(&self) -> WalkSpec {
        WalkSpec {
            source: "get_weight(edge) { x = 0; while (x < h[edge]) { x = x + 1; } return x; }"
                .to_string(),
            hyperparams: vec![],
        }
    }
}

#[test]
fn compiler_fallback_runs_ervs_only_and_stays_exact() {
    // Star with known weights (integer-valued so the hostile DSL loop and
    // the Rust weight agree): distribution must still be exact.
    let weights = [2.0f32, 4.0, 1.0, 3.0];
    let mut b = CsrBuilder::new(5);
    for (i, &w) in weights.iter().enumerate() {
        b.push_weighted(0, (i + 1) as u32, w);
    }
    let g = b.build().unwrap();
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let mut counts = vec![0u64; weights.len()];
    let mut saw_fallback_warning = false;
    for seed in 0..4000u64 {
        let cfg = WalkConfig {
            steps: 1,
            record_paths: true,
            seed,
            ..WalkConfig::default()
        };
        let report = engine
            .run(&WalkRequest::new(g.clone(), &HostileWorkload, &[0]).with_config(cfg))
            .expect("run");
        saw_fallback_warning |= report
            .warnings
            .iter()
            .any(|w| w.contains("no usable bound estimator"));
        assert_eq!(
            report.sampler_steps.get(sampler_ids::ERJS),
            0,
            "fallback must never select eRJS"
        );
        let path = &report.paths.as_ref().unwrap()[0];
        counts[(path[1] - 1) as usize] += 1;
    }
    assert!(saw_fallback_warning, "fallback warning not surfaced");
    stat::assert_matches_distribution(&counts, &stat::normalize(&weights), "fallback");
}

#[test]
fn generated_helpers_render_like_fig9d() {
    let c = compiled_for(&Node2Vec::paper(true));
    let src = &c.generated_source;
    assert!(src.contains("preprocess"), "missing preprocess(): {src}");
    assert!(src.contains("h_MAX"), "missing h_MAX rebinding: {src}");
    assert!(src.contains("h_SUM"), "missing h_SUM rebinding: {src}");
    assert!(src.contains("get_weight_max"), "missing max helper: {src}");
    assert!(src.contains("get_weight_sum"), "missing sum helper: {src}");
}
