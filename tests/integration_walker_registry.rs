//! The unified walker surface: DSL, native and spec-defined walkers
//! through one registry, one lowering pipeline, one request type.
//!
//! Pins the API-redesign guarantees:
//!
//! - DSL-compiled built-ins produce **bit-identical paths** to their
//!   native `DynamicWalk` twins under a seeded sweep (the round-trip that
//!   proves the lowering pipeline preserves walk semantics);
//! - a DSL walker registered at session build time runs through
//!   `submit`/`drain` with runtime sampler selection, deterministically
//!   across `workers ∈ {1, 2, 4, 8}`;
//! - registry edge cases are typed, not panics: duplicate names replace
//!   in place, unknown walker names surface as
//!   [`EngineError::UnknownWalker`] drain results, and malformed DSL
//!   surfaces as [`EngineError::WalkerCompile`] through
//!   [`Session::load_walker`].

use flexiwalker::prelude::*;

fn labeled_graph(seed: u64) -> Csr {
    let g = gen::rmat(9, 4096, gen::RmatParams::SOCIAL, seed);
    let g = WeightModel::UniformReal.apply(g, seed);
    flexiwalker::graph::props::assign_uniform_labels(g, 5, seed)
}

fn session_with(walkers: WalkerRegistry, workers: usize) -> Session {
    FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .walker_registry(walkers)
        .workers(workers)
        .build()
}

/// Satellite: seeded round-trip — every built-in served from its
/// canonical DSL spec must walk bit-identically to the native struct.
#[test]
fn dsl_compiled_builtins_match_native_twins_bitwise() {
    let queries: Vec<NodeId> = (0..96).collect();
    for seed in [7u64, 1234, 0xFEED] {
        for name in ["node2vec", "metapath", "sopr", "uniform"] {
            let mut native = session_with(WalkerRegistry::builtin(), 2);
            let mut dsl = session_with(WalkerRegistry::builtin_dsl(), 2);
            let run = |s: &mut Session| {
                let g = s.load_graph(labeled_graph(seed));
                let w = s.load_walker(name).expect("builtin resolves");
                s.run(
                    WalkRequest::new(&g, &w, &queries)
                        .steps(10)
                        .seed(seed)
                        .record_paths(true),
                )
                .expect("run succeeds")
            };
            let native_report = run(&mut native);
            let dsl_report = run(&mut dsl);
            assert_eq!(
                native_report.paths, dsl_report.paths,
                "{name} (seed {seed}): DSL twin diverged from native walk"
            );
            assert_eq!(
                native_report.sampler_steps, dsl_report.sampler_steps,
                "{name} (seed {seed}): sampler selection diverged"
            );
            assert_eq!(native_report.steps_taken, dsl_report.steps_taken);
        }
    }
}

/// Acceptance: a user-registered DSL walker drains with runtime sampler
/// selection and is deterministic at every worker count.
#[test]
fn registered_dsl_walker_is_deterministic_across_worker_counts() {
    let decay = WalkerDef::dsl(
        "decay",
        "get_weight(edge) {
             h_e = h[edge];
             if (has_prev == 0) return h_e;
             if (adj[edge] == prev) return h_e * lambda;
             return h_e;
         }",
    )
    .hyperparam("lambda", 0.25);

    let queries: Vec<NodeId> = (0..128).collect();
    let mut baseline: Option<(Vec<Vec<NodeId>>, SamplerTally)> = None;
    for workers in [1usize, 2, 4, 8] {
        let mut session = FlexiWalker::builder()
            .device(DeviceSpec::a6000())
            .register_walker(decay.clone())
            .workers(workers)
            .build();
        let g = session.load_graph(labeled_graph(42));
        // Split across two submissions to exercise the drain executor.
        session.submit(
            WalkRequest::new(&g, "decay", &queries[..64])
                .steps(12)
                .record_paths(true),
        );
        session.submit(
            WalkRequest::new(&g, "decay", &queries[64..])
                .steps(12)
                .record_paths(true),
        );
        let mut paths = Vec::new();
        let mut tally = SamplerTally::new();
        for (_, r) in session.drain() {
            let report = r.expect("drain succeeds");
            paths.extend(report.paths.expect("recorded"));
            tally.merge(&report.sampler_steps);
        }
        // Runtime adaptation is live: the compiled bound estimators let
        // the cost model pick the non-trivial eRJS kernel.
        assert!(
            tally.get(sampler_ids::ERJS) > 0,
            "workers={workers}: eRJS never selected ({tally})"
        );
        assert!(tally.get(sampler_ids::ERVS) > 0);
        match &baseline {
            None => baseline = Some((paths, tally)),
            Some((base_paths, base_tally)) => {
                assert_eq!(base_paths, &paths, "workers={workers} diverged");
                assert_eq!(base_tally, &tally);
            }
        }
    }
}

/// Satellite: duplicate walker names replace in place (sampler-registry
/// semantics), and the replacement is what resolves.
#[test]
fn duplicate_walker_names_replace_in_place() {
    let mut session = FlexiWalker::builder()
        .register_walker(WalkerDef::dsl(
            "node2vec",
            "get_weight(edge) { return 1.0; }",
        ))
        .build();
    assert_eq!(
        session.walkers().names(),
        vec![
            "node2vec",
            "metapath",
            "sopr",
            "uniform",
            "temporal_uniform",
            "temporal_exp",
            "temporal_linear"
        ],
        "replacement kept the registry position"
    );
    let w = session.load_walker("node2vec").unwrap();
    let cw = w.get().unwrap();
    assert_eq!(
        cw.static_bound(),
        Some(1.0),
        "the flat replacement, not the built-in, resolved"
    );
}

/// Satellite: an unknown walker name in a request is a typed drain error.
#[test]
fn unknown_walker_in_request_is_typed_error_not_panic() {
    let mut session = FlexiWalker::builder().build();
    let g = session.load_graph(labeled_graph(5));
    let ok = session.submit(WalkRequest::new(&g, "uniform", &[0u32, 1]).steps(2));
    let bad = session.submit(WalkRequest::new(&g, "no-such-walker", &[2u32, 3]).steps(2));
    let results = session.drain();
    assert_eq!(results.len(), 2);
    for (ticket, result) in results {
        if ticket == ok {
            assert!(result.is_ok(), "healthy request unaffected");
        } else {
            assert_eq!(ticket, bad);
            match result.unwrap_err() {
                EngineError::UnknownWalker { name } => assert_eq!(name, "no-such-walker"),
                other => panic!("expected UnknownWalker, got {other:?}"),
            }
        }
    }
    // load_walker reports the same typed error up front.
    assert!(matches!(
        session.load_walker("no-such-walker"),
        Err(EngineError::UnknownWalker { .. })
    ));
}

/// Satellite: compile errors surface through `Session::load_walker`.
#[test]
fn compile_errors_surface_through_load_walker() {
    let mut session = FlexiWalker::builder()
        .register_walker(WalkerDef::dsl("broken", "get_weight() { return ; }"))
        .register_walker(WalkerDef::dsl(
            "dangling",
            "get_weight(edge) { return mystery_bias * h[edge]; }",
        ))
        .build();
    match session.load_walker("broken").unwrap_err() {
        EngineError::WalkerCompile { name, message } => {
            assert_eq!(name, "broken");
            assert!(message.contains("parse"), "diagnostic carried: {message}");
        }
        other => panic!("expected WalkerCompile, got {other:?}"),
    }
    match session.load_walker("dangling").unwrap_err() {
        EngineError::WalkerCompile { message, .. } => {
            assert!(message.contains("mystery_bias"), "{message}");
        }
        other => panic!("expected WalkerCompile, got {other:?}"),
    }
    // A drain addressing the broken walker gets the same typed error.
    let g = session.load_graph(labeled_graph(6));
    let t = session.submit(WalkRequest::new(&g, "broken", &[0u32]).steps(1));
    let results = session.drain();
    assert_eq!(results[0].0, t);
    assert!(matches!(
        results[0].1,
        Err(EngineError::WalkerCompile { .. })
    ));
}

/// Lowering is cached per definition: two handles of the same walker and
/// repeated named requests share one compile, and identical definitions
/// under different names share session aggregates.
#[test]
fn walker_lowering_and_preparation_are_cached() {
    let flat = "get_weight(edge) { return h[edge]; }";
    let mut session = FlexiWalker::builder()
        .register_walker(WalkerDef::dsl("flat_a", flat))
        .register_walker(WalkerDef::dsl("flat_b", flat))
        .build();
    let g = session.load_graph(labeled_graph(8));
    let a = session.load_walker("flat_a").unwrap();
    let _again = session.load_walker("flat_a").unwrap();
    let b = session.load_walker("flat_b").unwrap();
    assert_eq!(session.cached_walkers(), 1, "identical definitions share");
    assert_eq!(
        a.get().unwrap().fingerprint(),
        b.get().unwrap().fingerprint()
    );

    let queries: Vec<NodeId> = (0..16).collect();
    let first = session
        .run(WalkRequest::new(&g, &a, &queries).steps(4))
        .unwrap();
    assert!(first.preprocess_seconds > 0.0);
    // The sibling name hits the same aggregates row.
    let second = session
        .run(WalkRequest::new(&g, &b, &queries).steps(4))
        .unwrap();
    assert_eq!(second.preprocess_seconds, 0.0, "shared by fingerprint");
    assert_eq!(session.cached_aggregates(), 1);
}

/// Two native walkers whose struct state differs invisibly to their
/// `spec()` (MetaPath schemas) must never substitute for each other in
/// the session's lowering cache.
#[test]
fn native_walkers_with_equal_specs_resolve_independently() {
    let mut session = FlexiWalker::builder()
        .register_walker(WalkerDef::native(
            "mp_long",
            MetaPath {
                schema: vec![0, 1, 2, 3, 4],
                weighted: true,
            },
        ))
        .register_walker(WalkerDef::native(
            "mp_short",
            MetaPath {
                schema: vec![2, 2],
                weighted: true,
            },
        ))
        .build();
    let long = session.load_walker("mp_long").unwrap();
    let short = session.load_walker("mp_short").unwrap();
    assert_eq!(long.get().unwrap().walk_dyn().preferred_steps(), Some(5));
    assert_eq!(short.get().unwrap().walk_dyn().preferred_steps(), Some(2));
    assert_eq!(session.cached_walkers(), 2, "no lowering-key collision");
}

/// The compiler fallback still composes with the registry: an
/// unanalyzable DSL walker lowers (with warnings), runs reservoir-only,
/// and never selects a bound-requiring sampler.
#[test]
fn unanalyzable_dsl_walker_falls_back_to_reservoir_only() {
    let mut session = FlexiWalker::builder()
        .register_walker(WalkerDef::dsl(
            "looped",
            "get_weight(edge) { x = 0; while (x < h[edge]) { x = x + 1; } return x; }",
        ))
        .build();
    let g = session.load_graph(labeled_graph(9));
    let w = session
        .load_walker("looped")
        .expect("fallback is not an error");
    assert!(
        w.get().unwrap().artifacts().compiled.is_none(),
        "no estimators for a data-dependent loop"
    );
    let report = session
        .run(WalkRequest::new(&g, &w, &[0u32, 1, 2]).steps(4))
        .unwrap();
    assert_eq!(report.sampler_steps.get(sampler_ids::ERJS), 0);
    assert!(report
        .warnings
        .iter()
        .any(|w| w.contains("no usable bound estimator")));
}
