//! Out-of-core drain determinism and resident-cache invariants — the
//! differential harness for `Topology::OutOfCore`.
//!
//! The headline guarantee: a session's drained **walk output** under the
//! block-scheduled out-of-core topology is bit-identical to the same
//! drain under `Topology::Single`, at every worker count, including
//! mid-stream `apply_updates` epoch boundaries — while the graph's
//! resident footprint is capped far below its spill size. A scripted
//! sweep additionally pins the `ResidentCache` eviction invariants
//! (pinned never evicted, budget honoured once eviction settles, epoch
//! bumps drop stale blocks) through real `BlockRuntime` traffic.

use flexiwalker::graph::props;
use flexiwalker::prelude::*;

/// Resident budget and block target for every out-of-core run here:
/// small enough that the scale-8 graph spills into many blocks and the
/// cache is under genuine eviction pressure.
const BUDGET: usize = 8192;
const BLOCK: usize = 4096;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Labeled, weighted R-MAT graph — labels so MetaPath runs, weights so
/// the adaptive samplers bias.
fn graph(seed: u64) -> Csr {
    let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, seed);
    let g = WeightModel::UniformReal.apply(g, seed);
    props::assign_uniform_labels(g, 5, seed % 7 + 1)
}

/// Walk-semantic transcript of one drained ticket: everything that must
/// not depend on topology or worker count.
#[derive(Debug, PartialEq)]
struct WalkRecord {
    ticket: usize,
    epoch: u64,
    queries: usize,
    steps_taken: u64,
    paths: Option<Vec<Vec<NodeId>>>,
    sampler_steps: Vec<(String, u64)>,
}

fn records(drained: Vec<(Ticket, Result<RunReport, EngineError>)>) -> Vec<WalkRecord> {
    drained
        .into_iter()
        .map(|(t, r)| {
            let r = r.expect("drain succeeds");
            WalkRecord {
                ticket: t.id(),
                epoch: r.graph_version.epoch,
                queries: r.queries,
                steps_taken: r.steps_taken,
                paths: r.paths.clone(),
                sampler_steps: r
                    .sampler_steps
                    .iter()
                    .map(|(id, n)| (id.to_string(), n))
                    .collect(),
            }
        })
        .collect()
}

/// Three drains split by two mid-stream update batches (structural +
/// weight-only), every built-in walker, half the requests recording
/// paths — the full lifecycle one PR's worth of serving exercises.
fn run_script(seed: u64, topology: Topology, workers: usize) -> (Vec<WalkRecord>, SessionStats) {
    let walkers = ["node2vec", "metapath", "sopr", "uniform"];
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(workers)
        .topology(topology)
        .build();
    let g = session.load_graph(graph(seed));
    let n = g.graph().num_nodes() as u64;
    let mut walks = Vec::new();

    let submit_round = |session: &mut Session, round: u64| {
        for (i, w) in walkers.iter().enumerate() {
            let queries: Vec<NodeId> = (0..20u64)
                .map(|q| ((q * 7 + i as u64 * 13 + round * 3) % n) as NodeId)
                .collect();
            session.submit(
                WalkRequest::new(&g, *w, queries)
                    .steps(6)
                    .seed(seed ^ 0xB10C)
                    // Half the tickets ask for paths, so the merge's
                    // path-stripping is exercised both ways.
                    .record_paths(i % 2 == 0),
            );
        }
    };

    submit_round(&mut session, 0);
    walks.extend(records(session.drain()));

    // Epoch 1: structural batch (degree census and spill geometry move).
    session
        .apply_updates(
            &g,
            &[
                GraphUpdate::AddEdge {
                    src: (seed % n) as NodeId,
                    dst: ((seed * 31 + 1) % n) as NodeId,
                    weight: 2.5,
                    label: 1,
                },
                GraphUpdate::RemoveEdge {
                    src: ((seed * 13) % n) as NodeId,
                    dst: ((seed * 17 + 2) % n) as NodeId,
                },
            ],
        )
        .expect("structural batch applies");
    submit_round(&mut session, 1);
    walks.extend(records(session.drain()));

    // Epoch 2: weight-only batch (spilled weights must re-encode).
    session
        .apply_updates(
            &g,
            &[GraphUpdate::SetWeight {
                edge: (seed % g.graph().num_edges() as u64) as usize,
                weight: 0.125,
            }],
        )
        .expect("weight batch applies");
    submit_round(&mut session, 2);
    walks.extend(records(session.drain()));

    (walks, session.stats())
}

#[test]
fn out_of_core_output_is_bit_identical_to_single_at_every_worker_count() {
    for seed in [3u64, 41] {
        let (reference, _) = run_script(seed, Topology::Single, 1);
        assert!(!reference.is_empty());
        assert_eq!(
            reference.iter().map(|r| &r.epoch).max(),
            Some(&2),
            "the script must cross two epoch boundaries"
        );
        for workers in WORKERS {
            let (walks, stats) = run_script(seed, Topology::out_of_core(BUDGET, BLOCK), workers);
            assert_eq!(
                walks, reference,
                "seed {seed}: outofcore x workers({workers}) diverged from \
                 the single-device sequential drain"
            );
            // The runs really were served through the block layer, under
            // real eviction pressure, across all three epochs.
            assert!(stats.block_spills > 0, "stats: {stats:?}");
            assert!(stats.block_loads > 0, "stats: {stats:?}");
            assert!(stats.block_evictions > 0, "stats: {stats:?}");
        }
    }
}

#[test]
fn out_of_core_reports_carry_block_stats() {
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .topology(Topology::out_of_core(BUDGET, BLOCK))
        .build();
    let g = session.load_graph(graph(9));
    let queries: Vec<NodeId> = (0..32).collect();
    let report = session
        .run(WalkRequest::new(&g, "node2vec", queries).steps(8))
        .unwrap();
    let blocks = report.blocks.expect("out-of-core runs report block stats");
    assert!(blocks.blocks >= 2, "graph must spill into several blocks");
    assert_eq!(blocks.hits + blocks.loads, blocks.launches);
    assert!(blocks.loads > 0, "first drain is cold");
    assert!(blocks.io_seconds > 0.0, "disk time lands on the clock");
    assert_eq!(blocks.resident_budget, BUDGET);
    assert!(report.shards.is_none(), "one device, no shard census");
    assert!(
        report.sim_seconds >= blocks.io_seconds,
        "io is part of the simulated clock"
    );

    // Single runs over the same graph never report block stats.
    let mut single = FlexiWalker::builder().device(DeviceSpec::tiny()).build();
    let g = single.load_graph(graph(9));
    let queries: Vec<NodeId> = (0..32).collect();
    let report = single
        .run(WalkRequest::new(&g, "node2vec", queries).steps(8))
        .unwrap();
    assert!(report.blocks.is_none());
}

#[test]
fn updates_respill_only_dirty_blocks_between_drains() {
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .topology(Topology::out_of_core(BUDGET, BLOCK))
        .build();
    let g = session.load_graph(graph(21));
    let queries: Vec<NodeId> = (0..16).collect();
    session
        .run(WalkRequest::new(&g, "uniform", queries.clone()).steps(5))
        .unwrap();
    let spilled_cold = session.stats().block_spills;
    assert!(spilled_cold > 0, "first drain spills the graph");

    // A one-node weight touch migrates the cached runtime by re-spilling
    // the dirty node's block — not the whole graph.
    let outcome = session
        .apply_updates(
            &g,
            &[GraphUpdate::SetWeight {
                edge: 0,
                weight: 7.0,
            }],
        )
        .unwrap();
    assert!(outcome.blocks_migrated >= 1, "outcome: {outcome:?}");
    let spilled_warm = session.stats().block_spills;
    assert!(
        spilled_warm - spilled_cold < spilled_cold,
        "a one-edge batch must not re-spill every block \
         (cold {spilled_cold}, delta {})",
        spilled_warm - spilled_cold
    );
    // The next drain reuses the migrated runtime: no fresh full spill.
    session
        .run(WalkRequest::new(&g, "uniform", queries).steps(5))
        .unwrap();
    assert_eq!(session.stats().block_spills, spilled_warm);
}

/// Scripted `ResidentCache` sweep through a real `BlockRuntime`: fetch
/// blocks under several budgets with pins outstanding, and check the
/// eviction invariants the scheduler relies on.
#[test]
fn resident_cache_sweep_honours_pins_budget_and_epochs() {
    let h = GraphHandle::new(graph(33));
    let snap = h.snapshot();
    let (rt, _) = h.block_runtime(&snap, BLOCK, BUDGET).unwrap();
    let blocks = rt.blocks();
    assert!(blocks >= 4, "sweep needs several blocks, got {blocks}");

    // Walk every block twice, holding a moving pin window of two blocks.
    let mut pinned: Vec<usize> = Vec::new();
    for round in 0..2 {
        for b in 0..blocks {
            let (data, _) = rt.fetch_pinned(b).unwrap();
            assert_eq!(data.block(), b);
            assert!(
                rt.cache().is_resident(b),
                "round {round}: block {b} must be resident while pinned"
            );
            pinned.push(b);
            if pinned.len() > 2 {
                let old = pinned.remove(0);
                rt.unpin(old);
                // With no pin outstanding on `old`, the cache is free to
                // evict it — but never a still-pinned block.
                for &p in &pinned {
                    assert!(
                        rt.cache().is_resident(p),
                        "round {round}: pinned block {p} was evicted"
                    );
                }
            }
        }
    }
    for b in pinned.drain(..) {
        rt.unpin(b);
    }
    // Eviction settled: with every pin released, the next fetch brings
    // the cache back under its byte budget (one oversized block may
    // exceed it alone; this geometry has none).
    let (_, _) = rt.fetch_pinned(0).unwrap();
    rt.unpin(0);
    // An immediate re-fetch of the block just brought in is a hit.
    let (_, hit) = rt.fetch_pinned(0).unwrap();
    assert!(hit, "back-to-back fetch must be served from residency");
    rt.unpin(0);
    assert!(
        rt.max_block_bytes() <= BUDGET,
        "geometry has no oversized block"
    );
    assert!(
        rt.cache().used_bytes() <= BUDGET,
        "cache over budget after eviction settled: {} > {BUDGET}",
        rt.cache().used_bytes()
    );
    let counters = rt.cache().counters();
    assert!(counters.evictions > 0, "sweep must have evicted");
    assert!(counters.loads > 0 && counters.hits > 0);

    // Epoch bump: apply_updates migrates the cached runtime, re-spilling
    // dirty blocks and dropping their stale resident copies.
    let resident_before: Vec<usize> = (0..blocks).filter(|&b| rt.cache().is_resident(b)).collect();
    assert!(!resident_before.is_empty());
    let out = h
        .apply_updates(&[GraphUpdate::SetWeight {
            edge: 0,
            weight: 3.0,
        }])
        .unwrap();
    assert!(out.blocks_migrated >= 1);
    let dirty_block = rt.block_of(0);
    assert!(
        !rt.cache().is_resident(dirty_block),
        "epoch bump must drop the re-spilled block's stale copy"
    );
    // And the refetched copy carries the new epoch's data.
    let (data, hit) = rt.fetch_pinned(dirty_block).unwrap();
    assert!(!hit, "stale copy was dropped, so this is a cold load");
    assert_eq!(data.weight(0), 3.0);
    rt.unpin(dirty_block);
}
