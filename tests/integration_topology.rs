//! Topology determinism, partition-plan soundness and plan-reuse
//! regressions — the differential harness for shard-aware sessions.
//!
//! The headline guarantee: a session's drained **walk output** (paths,
//! step counts, sampler tallies, per-ticket ordering) is bit-identical
//! across every execution topology *and* every worker count. Sharding
//! changes where work executes and what the simulated clock, memory
//! model and migration census read — never what the walks do. A seeded
//! sweep pins this across
//! `topology ∈ {single, multi(2), partitioned(2, 4), outofcore}` ×
//! `workers ∈ {1, 4}`, for all four built-in walkers plus a
//! DSL-registered one, over a session stream whose epochs split
//! mid-stream through `apply_updates`.

use flexiwalker::core::sampler_ids as ids;
use flexiwalker::graph::props;
use flexiwalker::prelude::*;

const WORKERS: [usize; 2] = [1, 4];

fn topologies() -> [Topology; 5] {
    [
        Topology::Single,
        Topology::multi(2),
        Topology::partitioned(2),
        Topology::partitioned(4),
        // Budget far below the spill size, so the sweep also pins the
        // out-of-core replay's determinism under real eviction pressure.
        Topology::out_of_core(8192, 4096),
    ]
}

/// Labeled, weighted R-MAT graph — labels so MetaPath runs, weights so
/// the adaptive samplers have something to bias over.
fn graph(seed: u64) -> Csr {
    let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, seed);
    let g = WeightModel::UniformReal.apply(g, seed);
    props::assign_uniform_labels(g, 5, seed % 7 + 1)
}

/// The DSL walker of the sweep: discourages immediate backtracking.
fn decay_walker() -> WalkerDef {
    WalkerDef::dsl(
        "decay",
        "get_weight(edge) {
             h_e = h[edge];
             if (has_prev == 0) return h_e;
             if (adj[edge] == prev) return h_e * lambda;
             return h_e;
         }",
    )
    .hyperparam("lambda", 0.25)
}

/// Everything *walk-semantic* about one drained ticket — the part that
/// must not depend on topology or worker count. Timing, device activity
/// and migration accounting are deliberately absent: those are exactly
/// what topologies change.
#[derive(Debug, PartialEq)]
struct WalkRecord {
    ticket: usize,
    /// `(dense graph index, epoch)` — raw graph ids are a process-global
    /// counter, normalised to first-appearance order.
    graph_version: (u64, u64),
    queries: usize,
    steps_taken: u64,
    paths: Option<Vec<Vec<NodeId>>>,
    sampler_steps: Vec<(String, u64)>,
}

/// The timing footprint of one ticket, compared bit-exactly *within* a
/// topology across worker counts (floats as bits).
#[derive(Debug, PartialEq)]
struct ClockRecord {
    sim_seconds: u64,
    saturated_seconds: u64,
    migrations: u64,
    link_seconds: u64,
}

fn records(
    drained: Vec<(Ticket, Result<RunReport, EngineError>)>,
) -> (Vec<WalkRecord>, Vec<ClockRecord>) {
    let mut walks = Vec::new();
    let mut clocks = Vec::new();
    for (t, r) in drained {
        let r = r.expect("drain succeeds");
        walks.push(WalkRecord {
            ticket: t.id(),
            graph_version: (r.graph_version.graph_id, r.graph_version.epoch),
            queries: r.queries,
            steps_taken: r.steps_taken,
            paths: r.paths.clone(),
            sampler_steps: r
                .sampler_steps
                .iter()
                .map(|(id, n)| (id.to_string(), n))
                .collect(),
        });
        let (migrations, link_seconds) = r
            .shards
            .as_ref()
            .map_or((0, 0.0), |s| (s.migrations, s.link_seconds));
        clocks.push(ClockRecord {
            sim_seconds: r.sim_seconds.to_bits(),
            saturated_seconds: r.saturated_seconds.to_bits(),
            migrations,
            link_seconds: link_seconds.to_bits(),
        });
    }
    (walks, clocks)
}

/// Replays one scripted session: all four built-ins plus the DSL walker
/// over two graphs, a structural + weight update between the two drains
/// (epoch split mid-stream), and a second graph left at epoch 0 so the
/// final drain covers two graph versions concurrently.
fn run_script(
    seed: u64,
    topology: Topology,
    workers: usize,
) -> (Vec<WalkRecord>, Vec<ClockRecord>, SessionStats) {
    let walkers = ["node2vec", "metapath", "sopr", "uniform", "decay"];
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .workers(workers)
        .topology(topology)
        .register_walker(decay_walker())
        .build();
    let a = session.load_graph(graph(seed));
    let b = session.load_graph(graph(seed + 71));
    let n = a.graph().num_nodes() as u64;

    let mut walks = Vec::new();
    let mut clocks = Vec::new();

    // Drain 1: every walker over graph A at epoch 0.
    for (i, w) in walkers.iter().enumerate() {
        let queries: Vec<NodeId> = (0..24u64)
            .map(|q| ((q * 7 + i as u64 * 13) % n) as NodeId)
            .collect();
        session.submit(
            WalkRequest::new(&a, *w, queries)
                .steps(6)
                .seed(seed ^ 0xD1F)
                .record_paths(true),
        );
    }
    let (w1, c1) = records(session.drain());
    walks.extend(w1);
    clocks.extend(c1);

    // Mid-stream epoch split: graph A advances (structural + weight),
    // graph B stays at epoch 0, and the final drain covers both versions.
    session
        .apply_updates(
            &a,
            &[
                GraphUpdate::AddEdge {
                    src: (seed % n) as NodeId,
                    dst: ((seed * 31 + 1) % n) as NodeId,
                    weight: 2.5,
                    label: 1,
                },
                GraphUpdate::SetWeight {
                    edge: (seed % a.graph().num_edges() as u64) as usize,
                    weight: 0.75,
                },
            ],
        )
        .expect("update applies");
    for (i, w) in walkers.iter().enumerate() {
        let g = if i % 2 == 0 { &a } else { &b };
        let queries: Vec<NodeId> = (0..16u64)
            .map(|q| ((q * 11 + i as u64 * 5) % n) as NodeId)
            .collect();
        session.submit(
            WalkRequest::new(g, *w, queries)
                .steps(5)
                .seed(seed ^ 0xD1F)
                .record_paths(true),
        );
    }
    let (w2, c2) = records(session.drain());
    walks.extend(w2);
    clocks.extend(c2);

    // Normalise process-global graph ids to first-appearance order.
    let mut dense: Vec<u64> = Vec::new();
    for r in &mut walks {
        let idx = match dense.iter().position(|&id| id == r.graph_version.0) {
            Some(i) => i,
            None => {
                dense.push(r.graph_version.0);
                dense.len() - 1
            }
        };
        r.graph_version.0 = idx as u64;
    }
    (walks, clocks, session.stats())
}

#[test]
fn walk_output_is_bit_identical_across_topologies_and_workers() {
    for seed in [3u64, 29] {
        let (reference, _, _) = run_script(seed, Topology::Single, 1);
        assert!(!reference.is_empty());
        // The adaptive strategies actually mixed kernels somewhere in the
        // sweep, so the equality below covers both sampling paths.
        let total_rjs: u64 = reference
            .iter()
            .flat_map(|r| r.sampler_steps.iter())
            .filter(|(id, _)| id == ids::ERJS)
            .map(|(_, n)| n)
            .sum();
        assert!(total_rjs > 0, "seed {seed}: eRJS never selected");
        for topology in topologies() {
            // Within one topology, the full transcript — including the
            // simulated clock and migration census — is identical at
            // every worker count.
            let mut clocks_ref = None;
            for workers in WORKERS {
                let (walks, clocks, stats) = run_script(seed, topology, workers);
                assert_eq!(
                    walks,
                    reference,
                    "seed {seed}: {} x workers({workers}) diverged from the \
                     single-device sequential drain",
                    topology.tag()
                );
                match &clocks_ref {
                    None => clocks_ref = Some(clocks),
                    Some(r) => assert_eq!(
                        &clocks,
                        r,
                        "seed {seed}: {} clock diverged across worker counts",
                        topology.tag()
                    ),
                }
                // Shard accounting matches the topology shape.
                match topology {
                    Topology::Single => {
                        assert_eq!(stats.sharded_drains, 0);
                        assert_eq!(stats.migrations, 0);
                    }
                    Topology::MultiDevice { .. } => {
                        assert_eq!(stats.sharded_drains, 2);
                        assert_eq!(stats.migrations, 0, "duplicated graphs never migrate");
                        assert!(stats.shard_launches > 10, "stats: {stats:?}");
                    }
                    Topology::Partitioned { .. } => {
                        assert_eq!(stats.sharded_drains, 2);
                        assert!(stats.migrations > 0, "hash partitions must migrate");
                        assert!(stats.link_seconds > 0.0);
                        assert_eq!(stats.plan_builds, 2, "one plan per graph");
                        assert_eq!(stats.plan_refreshes, 1, "one structural epoch on A");
                        assert!(stats.plan_hits >= 8, "stats: {stats:?}");
                    }
                    Topology::OutOfCore { .. } => {
                        assert_eq!(stats.sharded_drains, 2);
                        assert_eq!(stats.migrations, 0, "blocks replay on one device");
                        assert!(stats.block_spills > 0, "stats: {stats:?}");
                        assert!(stats.block_loads > 0, "stats: {stats:?}");
                        assert!(
                            stats.block_evictions > 0,
                            "budget below spill size must evict: {stats:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn partitioned_reports_carry_shard_census() {
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .topology(Topology::partitioned(3))
        .build();
    let g = session.load_graph(graph(11));
    let queries: Vec<NodeId> = (0..64u32).collect();
    let report = session
        .run(WalkRequest::new(&g, "node2vec", queries).steps(8))
        .unwrap();
    let shards = report.shards.expect("partitioned run reports shard stats");
    assert_eq!(shards.shards, 3);
    assert_eq!(
        shards.per_shard_steps.iter().sum::<u64>(),
        report.steps_taken
    );
    assert!(shards.migrations > 0);
    assert!(shards.link_seconds > 0.0);
    assert_eq!(
        report.sim_seconds,
        report.sim_seconds.max(shards.link_seconds)
    );
    // The census never needs caller-visible paths.
    assert!(report.paths.is_none());
}

#[test]
fn partitioned_topology_fits_graphs_that_oom_single_and_multi() {
    let csr = graph(17);
    let mut spec = DeviceSpec::tiny();
    // VRAM holds ~40% of the graph: single and duplicated-graph modes
    // must OOM; four partitions (~25% each + row pointers) must fit.
    spec.vram_bytes = csr.memory_bytes() * 2 / 5 + csr.row_ptr().len() * 8;
    let queries: Vec<NodeId> = (0..32u32).collect();
    for topology in [Topology::Single, Topology::multi(4)] {
        let mut session = FlexiWalker::builder()
            .device(spec.clone())
            .topology(topology)
            .build();
        let g = session.load_graph(csr.clone());
        let err = session
            .run(WalkRequest::new(&g, "uniform", &queries).steps(4))
            .unwrap_err();
        assert!(
            matches!(err, EngineError::OutOfMemory { .. }),
            "{} should OOM: {err:?}",
            topology.tag()
        );
    }
    let mut session = FlexiWalker::builder()
        .device(spec)
        .topology(Topology::partitioned(4))
        .build();
    let g = session.load_graph(csr);
    let report = session
        .run(WalkRequest::new(&g, "uniform", &queries).steps(4))
        .unwrap();
    assert!(report.steps_taken > 0);
}

#[test]
fn partition_plans_cover_every_edge_once_across_scales() {
    // The session path of `partition_bytes_cover_all_edges_once`: the
    // plan a partitioned drain is served from covers each edge exactly
    // once, at every sweep scale, and keeps doing so after structural
    // updates migrate it incrementally.
    for scale in [8u32, 10, 12] {
        for shards in [2usize, 4] {
            let csr = gen::rmat(scale, 4 << scale, gen::RmatParams::SOCIAL, u64::from(scale));
            let csr = WeightModel::UniformReal.apply(csr, u64::from(scale));
            let mut session = FlexiWalker::builder()
                .device(DeviceSpec::a6000())
                .topology(Topology::partitioned(shards))
                .skip_profile(true)
                .build();
            let g = session.load_graph(csr);
            session
                .run(WalkRequest::new(&g, "uniform", &[0u32, 1, 2][..]).steps(2))
                .unwrap();
            assert_eq!(session.stats().plan_builds, 1);

            let snap = g.snapshot();
            let (plan, fetch) = g.partition_plan(&snap, shards);
            assert_eq!(fetch, PlanFetch::Cached, "drain left the plan cached");
            assert_eq!(plan.total_edges(), snap.graph.num_edges() as u64);
            let row = snap.graph.row_ptr().len() * 8;
            let bytes = plan.resident_bytes(&snap.graph);
            assert_eq!(bytes.len(), shards);
            let per_edge = flexiwalker::graph::partition::bytes_per_edge(&snap.graph);
            let edge_bytes: usize = bytes.iter().map(|b| b - row).sum();
            assert_eq!(edge_bytes, snap.graph.num_edges() * per_edge);

            // Structural churn: the incrementally migrated plan equals a
            // from-scratch re-partition of the updated graph.
            let n = snap.graph.num_nodes() as u64;
            for round in 0..4u64 {
                session
                    .apply_updates(
                        &g,
                        &[
                            GraphUpdate::AddEdge {
                                src: ((round * 97 + 3) % n) as NodeId,
                                dst: ((round * 41 + 7) % n) as NodeId,
                                weight: 1.5,
                                label: 0,
                            },
                            GraphUpdate::RemoveEdge {
                                src: ((round * 59) % n) as NodeId,
                                dst: ((round * 23 + 1) % n) as NodeId,
                            },
                        ],
                    )
                    .expect("update applies");
            }
            let snap = g.snapshot();
            let (migrated, fetch) = g.partition_plan(&snap, shards);
            assert_eq!(fetch, PlanFetch::Cached, "updates migrate, not evict");
            assert_eq!(
                *migrated,
                PartitionPlan::compute(&snap.graph, shards),
                "scale {scale} x {shards} shards: refresh != re-partition"
            );
        }
    }
}

#[test]
fn plans_are_reused_across_drains_not_rebuilt_per_launch() {
    // The regression the plan cache exists for: `MultiDeviceEngine`-style
    // re-partitioning on every launch. Re-partitions must track the
    // *structural epoch count*, not the drain count.
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::tiny())
        .topology(Topology::partitioned(2))
        .build();
    let g = session.load_graph(graph(23));
    let n = g.graph().num_nodes() as u64;
    let drain = |session: &mut Session, g: &GraphHandle, s: u64| {
        for i in 0..3u64 {
            let queries: Vec<NodeId> = (0..8u64).map(|q| ((q + i * 3 + s) % n) as NodeId).collect();
            session.submit(WalkRequest::new(g, "uniform", queries).steps(4));
        }
        for (_, r) in session.drain() {
            r.expect("drain succeeds");
        }
    };

    let mut structural_epochs = 0u64;
    for round in 0..6u64 {
        drain(&mut session, &g, round);
        if round % 2 == 0 {
            // Structural batch: the cached plan migrates incrementally.
            session
                .apply_updates(
                    &g,
                    &[GraphUpdate::AddEdge {
                        src: ((round * 13) % n) as NodeId,
                        dst: ((round * 7 + 2) % n) as NodeId,
                        weight: 1.0,
                        label: 0,
                    }],
                )
                .unwrap();
            structural_epochs += 1;
        } else {
            // Weight-only batch: the plan carries across untouched.
            session
                .apply_updates(
                    &g,
                    &[GraphUpdate::SetWeight {
                        edge: (round % g.graph().num_edges() as u64) as usize,
                        weight: 1.25,
                    }],
                )
                .unwrap();
        }
    }
    drain(&mut session, &g, 99);

    let stats = session.stats();
    assert_eq!(
        stats.plan_builds, 1,
        "exactly one from-scratch partitioning"
    );
    assert_eq!(
        stats.plan_refreshes, structural_epochs,
        "re-partition work tracks structural epochs, not drains: {stats:?}"
    );
    // 7 drains x 3 requests: every preparation after the first was a hit.
    assert_eq!(stats.plan_hits, 20, "stats: {stats:?}");
}
