//! End-to-end dynamic-graph support (§7.2 extension): walk → mutate →
//! refresh aggregates → walk again, with the eRJS bound staying sound
//! throughout.

use flexiwalker::compiler::{compile, CompileOutcome};
use flexiwalker::core::preprocess::Aggregates;
use flexiwalker::core::runtime::RuntimeEnv;
use flexiwalker::graph::dynamic::{DynamicGraph, GraphUpdate};
use flexiwalker::prelude::*;
use flexiwalker::sampling::stat;

#[test]
fn bound_stays_sound_across_updates_and_refreshes() {
    let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 17);
    let g = WeightModel::UniformReal.apply(g, 17);
    let w = Node2Vec::paper(true);
    let compiled = match compile(&w.spec()).unwrap() {
        CompileOutcome::Supported(c) => c,
        _ => panic!("node2vec compiles"),
    };
    let mut agg = Aggregates::compute(&g, &compiled.preprocess, &DeviceSpec::a6000());
    let mut dg = DynamicGraph::new(g);

    let mut rng = flexiwalker::rng::SplitMix64::new(99);
    for round in 0..20 {
        // Mutate: crank random edge weights up hard (the exact case §7.1
        // says breaks stale preprocessed maxima).
        for _ in 0..5 {
            let e = rng.bounded(dg.graph().num_edges() as u64) as usize;
            dg.set_weight(e, 5.0 + (round as f32) * 10.0);
        }
        // Structural churn too.
        let src = rng.bounded(dg.graph().num_nodes() as u64) as u32;
        let dst = rng.bounded(dg.graph().num_nodes() as u64) as u32;
        dg.queue(GraphUpdate::AddEdge {
            src,
            dst,
            weight: 100.0 + round as f32,
            label: 0,
        });
        dg.commit().unwrap();

        // Refresh exactly the dirty nodes.
        let dirty = dg.take_dirty_nodes();
        assert!(!dirty.is_empty());
        agg.refresh_nodes(dg.graph(), &dirty);

        // Soundness: the estimator bound dominates every actual weight.
        let g = dg.graph();
        for cur in (0..g.num_nodes() as u32).step_by(13) {
            if g.degree(cur) == 0 {
                continue;
            }
            let state = WalkState {
                cur,
                prev: Some((cur + 1) % g.num_nodes() as u32),
                step: 1,
            };
            let env = RuntimeEnv {
                graph: g,
                aggregates: &agg,
                workload: &w,
                state,
            };
            let bound = compiled.max_estimator.eval(&env).expect("estimable");
            for e in g.edge_range(cur) {
                let actual = f64::from(w.weight(g, &state, e));
                assert!(
                    bound * (1.0 + 1e-5) >= actual,
                    "round {round}: stale bound {bound} < {actual} at {cur}"
                );
            }
        }
    }
}

#[test]
fn stale_aggregates_are_actually_stale_without_refresh() {
    // Negative control: skipping the refresh must leave a violated bound,
    // proving the refresh test above is load-bearing.
    let g = CsrBuilder::new(2)
        .weighted_edge(0, 1, 1.0)
        .weighted_edge(1, 0, 1.0)
        .build()
        .unwrap();
    let w = Node2Vec::paper(true);
    let compiled = match compile(&w.spec()).unwrap() {
        CompileOutcome::Supported(c) => c,
        _ => panic!("compiles"),
    };
    let agg = Aggregates::compute(&g, &compiled.preprocess, &DeviceSpec::a6000());
    let mut dg = DynamicGraph::new(g);
    dg.set_weight(0, 1000.0);
    let state = WalkState {
        cur: 0,
        prev: Some(1),
        step: 1,
    };
    let env = RuntimeEnv {
        graph: dg.graph(),
        aggregates: &agg,
        workload: &w,
        state,
    };
    let stale_bound = compiled.max_estimator.eval(&env).unwrap();
    let actual = f64::from(w.weight(dg.graph(), &state, 0));
    assert!(
        stale_bound < actual,
        "expected staleness: bound {stale_bound} vs {actual}"
    );
}

#[test]
fn walks_on_updated_graph_follow_new_distribution() {
    // Star 0 -> {1, 2}: start with equal weights, then boost edge 0->2 to
    // 9x and verify walks redistribute accordingly after refresh.
    let g = CsrBuilder::new(3)
        .weighted_edge(0, 1, 1.0)
        .weighted_edge(0, 2, 1.0)
        .build()
        .unwrap();
    let mut dg = DynamicGraph::new(g);
    dg.set_weight(1, 9.0); // Edge 0 -> 2.
    let g = dg.graph();
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let mut counts = [0u64; 2];
    for seed in 0..3000u64 {
        let cfg = WalkConfig {
            steps: 1,
            record_paths: true,
            seed,
            ..WalkConfig::default()
        };
        let r = engine
            .run(&WalkRequest::new(g, &UniformWalk, &[0]).with_config(cfg))
            .unwrap();
        counts[(r.paths.as_ref().unwrap()[0][1] - 1) as usize] += 1;
    }
    stat::assert_matches_distribution(&counts, &[0.1, 0.9], "post-update walks");
}
