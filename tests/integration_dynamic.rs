//! End-to-end dynamic-graph support (§7.2 extension): walk → mutate →
//! refresh aggregates → walk again, with the eRJS bound staying sound
//! throughout.

use flexiwalker::compiler::{compile, CompileOutcome};
use flexiwalker::core::preprocess::Aggregates;
use flexiwalker::core::runtime::RuntimeEnv;
use flexiwalker::graph::dynamic::{DynamicGraph, GraphUpdate};
use flexiwalker::prelude::*;
use flexiwalker::sampling::stat;

#[test]
fn bound_stays_sound_across_updates_and_refreshes() {
    let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 17);
    let g = WeightModel::UniformReal.apply(g, 17);
    let w = Node2Vec::paper(true);
    let compiled = match compile(&w.spec()).unwrap() {
        CompileOutcome::Supported(c) => c,
        _ => panic!("node2vec compiles"),
    };
    let mut agg = Aggregates::compute(&g, &compiled.preprocess, &DeviceSpec::a6000());
    let mut dg = DynamicGraph::new(g);

    let mut rng = flexiwalker::rng::SplitMix64::new(99);
    for round in 0..20 {
        // Mutate: crank random edge weights up hard (the exact case §7.1
        // says breaks stale preprocessed maxima).
        for _ in 0..5 {
            let e = rng.bounded(dg.graph().num_edges() as u64) as usize;
            dg.set_weight(e, 5.0 + (round as f32) * 10.0);
        }
        // Structural churn too.
        let src = rng.bounded(dg.graph().num_nodes() as u64) as u32;
        let dst = rng.bounded(dg.graph().num_nodes() as u64) as u32;
        dg.queue(GraphUpdate::AddEdge {
            src,
            dst,
            weight: 100.0 + round as f32,
            label: 0,
        });
        dg.commit().unwrap();

        // Refresh exactly the dirty nodes.
        let dirty = dg.take_dirty_nodes();
        assert!(!dirty.is_empty());
        agg.refresh_nodes(dg.graph(), &dirty);

        // Soundness: the estimator bound dominates every actual weight.
        let g = dg.graph();
        for cur in (0..g.num_nodes() as u32).step_by(13) {
            if g.degree(cur) == 0 {
                continue;
            }
            let state = WalkState {
                cur,
                prev: Some((cur + 1) % g.num_nodes() as u32),
                step: 1,
                time: 0,
            };
            let env = RuntimeEnv {
                graph: g,
                aggregates: &agg,
                workload: &w,
                state,
            };
            let bound = compiled.max_estimator.eval(&env).expect("estimable");
            for e in g.edge_range(cur) {
                let actual = f64::from(w.weight(g, &state, e));
                assert!(
                    bound * (1.0 + 1e-5) >= actual,
                    "round {round}: stale bound {bound} < {actual} at {cur}"
                );
            }
        }
    }
}

#[test]
fn stale_aggregates_are_actually_stale_without_refresh() {
    // Negative control: skipping the refresh must leave a violated bound,
    // proving the refresh test above is load-bearing.
    let g = CsrBuilder::new(2)
        .weighted_edge(0, 1, 1.0)
        .weighted_edge(1, 0, 1.0)
        .build()
        .unwrap();
    let w = Node2Vec::paper(true);
    let compiled = match compile(&w.spec()).unwrap() {
        CompileOutcome::Supported(c) => c,
        _ => panic!("compiles"),
    };
    let agg = Aggregates::compute(&g, &compiled.preprocess, &DeviceSpec::a6000());
    let mut dg = DynamicGraph::new(g);
    dg.set_weight(0, 1000.0);
    let state = WalkState {
        cur: 0,
        prev: Some(1),
        step: 1,
        time: 0,
    };
    let env = RuntimeEnv {
        graph: dg.graph(),
        aggregates: &agg,
        workload: &w,
        state,
    };
    let stale_bound = compiled.max_estimator.eval(&env).unwrap();
    let actual = f64::from(w.weight(dg.graph(), &state, 0));
    assert!(
        stale_bound < actual,
        "expected staleness: bound {stale_bound} vs {actual}"
    );
}

#[test]
fn walks_on_updated_graph_follow_new_distribution() {
    // Star 0 -> {1, 2}: start with equal weights, then boost edge 0->2 to
    // 9x and verify walks redistribute accordingly after refresh.
    let g = CsrBuilder::new(3)
        .weighted_edge(0, 1, 1.0)
        .weighted_edge(0, 2, 1.0)
        .build()
        .unwrap();
    let mut dg = DynamicGraph::new(g);
    dg.set_weight(1, 9.0); // Edge 0 -> 2.
    let g = dg.graph();
    let engine = FlexiWalkerEngine::new(DeviceSpec::a6000());
    let mut counts = [0u64; 2];
    for seed in 0..3000u64 {
        let cfg = WalkConfig {
            steps: 1,
            record_paths: true,
            seed,
            ..WalkConfig::default()
        };
        let r = engine
            .run(&WalkRequest::new(g.clone(), &UniformWalk, &[0]).with_config(cfg))
            .unwrap();
        counts[(r.paths.as_ref().unwrap()[0][1] - 1) as usize] += 1;
    }
    stat::assert_matches_distribution(&counts, &[0.1, 0.9], "post-update walks");
}

/// Builds the deterministic update batch for one round of the interleaved
/// schedule below.
fn schedule_batch(round: u64, num_nodes: u32, num_edges: usize) -> Vec<GraphUpdate> {
    let mut rng = flexiwalker::rng::SplitMix64::new(0xBA7C_0000 + round);
    let mut batch = Vec::new();
    for _ in 0..3 {
        batch.push(GraphUpdate::SetWeight {
            edge: rng.bounded(num_edges as u64) as usize,
            weight: 1.0 + rng.bounded(900) as f32 / 100.0,
        });
    }
    if round % 2 == 1 {
        batch.push(GraphUpdate::AddEdge {
            src: rng.bounded(u64::from(num_nodes)) as u32,
            dst: rng.bounded(u64::from(num_nodes)) as u32,
            weight: 2.0 + round as f32,
            label: 0,
        });
    }
    batch
}

#[test]
fn interleaved_update_schedule_replays_identically() {
    // Epoch-keyed determinism: N drains interleaved with M update batches
    // on one handle must produce exactly the paths of the same schedule
    // replayed on a fresh session — including a replay that reloads the
    // graph at every epoch (full rebuild instead of incremental refresh),
    // which proves the migrated caches are bit-equivalent to rebuilt ones.
    let base = || {
        let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 23);
        WeightModel::UniformReal.apply(g, 23)
    };
    let w = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..48).collect();
    const ROUNDS: u64 = 4;

    // Schedule A: one handle, incremental cache migration.
    let run_incremental = || {
        let mut session = FlexiWalker::builder().build();
        let g = session.load_graph(base());
        let mut per_round = Vec::new();
        for round in 0..ROUNDS {
            let report = session
                .run(
                    WalkRequest::new(&g, &w, &queries)
                        .steps(10)
                        .record_paths(true),
                )
                .unwrap();
            assert_eq!(report.graph_version.epoch, round);
            per_round.push(report.paths.unwrap());
            let csr = g.graph();
            session
                .apply_updates(
                    &g,
                    &schedule_batch(round, csr.num_nodes() as u32, csr.num_edges()),
                )
                .unwrap();
        }
        (per_round, session.stats())
    };
    let (a, stats_a) = run_incremental();
    let (b, _) = run_incremental();
    assert_eq!(a, b, "identical schedules must replay identically");
    assert_eq!(stats_a.digests_computed, 1, "one digest for the whole run");
    assert_eq!(
        stats_a.aggregates_built, 1,
        "only the first drain builds aggregates from scratch"
    );
    assert_eq!(
        stats_a.aggregates_refreshed, ROUNDS,
        "one migration per batch"
    );

    // Schedule B: a fresh session that reloads the evolved graph at every
    // epoch — every drain pays a full digest + full aggregate rebuild. The
    // query cursor is kept in lockstep by submitting the same stream.
    let evolving = GraphHandle::new(base());
    let mut c = Vec::new();
    let mut fresh = FlexiWalker::builder().build();
    for round in 0..ROUNDS {
        let snapshot = fresh.load_graph((*evolving.graph()).clone());
        let report = fresh
            .run(
                WalkRequest::new(&snapshot, &w, &queries)
                    .steps(10)
                    .record_paths(true),
            )
            .unwrap();
        c.push(report.paths.unwrap());
        let csr = evolving.graph();
        evolving
            .apply_updates(&schedule_batch(
                round,
                csr.num_nodes() as u32,
                csr.num_edges(),
            ))
            .unwrap();
    }
    assert_eq!(a, c, "incremental serving diverged from full rebuilds");
}

#[test]
fn post_update_walks_traverse_newly_inserted_edges() {
    // Node 0 starts with a single feeble out-edge; a live insertion of a
    // dominant edge must show up in served walks immediately.
    let g = CsrBuilder::new(3)
        .weighted_edge(0, 1, 0.001)
        .weighted_edge(1, 0, 1.0)
        .weighted_edge(2, 0, 1.0)
        .build()
        .unwrap();
    let w = UniformWalk;
    let mut session = FlexiWalker::builder().build();
    let g = session.load_graph(g);

    let before = session
        .run(WalkRequest::new(&g, &w, &[0]).steps(1).record_paths(true))
        .unwrap();
    assert_eq!(before.paths.as_ref().unwrap()[0], vec![0, 1]);

    let outcome = session
        .apply_updates(
            &g,
            &[GraphUpdate::AddEdge {
                src: 0,
                dst: 2,
                weight: 10_000.0,
                label: 0,
            }],
        )
        .unwrap();
    assert_eq!(outcome.version.epoch, 1);

    let mut crossed = 0;
    for seed in 0..50u64 {
        let r = session
            .run(
                WalkRequest::new(&g, &w, &[0])
                    .steps(1)
                    .seed(seed)
                    .record_paths(true),
            )
            .unwrap();
        assert_eq!(r.graph_version.epoch, 1);
        if r.paths.as_ref().unwrap()[0] == vec![0, 2] {
            crossed += 1;
        }
    }
    assert!(
        crossed >= 45,
        "inserted dominant edge taken only {crossed}/50 times"
    );
}

#[test]
fn incremental_refresh_touches_only_the_dirty_frontier() {
    // A K-node dirty batch must recompute exactly K aggregates — not all
    // N nodes — and the post-update drain must serve from the migrated
    // cache instead of rebuilding.
    let g = gen::rmat(9, 8192, gen::RmatParams::SOCIAL, 31);
    let g = WeightModel::UniformReal.apply(g, 31);
    let w = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..32).collect();

    let mut session = FlexiWalker::builder().build();
    let g = session.load_graph(g);
    session
        .run(WalkRequest::new(&g, &w, &queries).steps(5))
        .unwrap();
    assert_eq!(session.stats().aggregates_built, 1);
    assert_eq!(session.stats().aggregate_nodes_refreshed, 0);

    // Touch edges out of three distinct source nodes.
    let csr = g.graph();
    let e0 = csr.edge_range(0).start;
    let e1 = csr.edge_range(1).start;
    let e2 = csr.edge_range(2).start;
    let outcome = session
        .apply_updates(
            &g,
            &[
                GraphUpdate::SetWeight {
                    edge: e0,
                    weight: 9.0,
                },
                GraphUpdate::SetWeight {
                    edge: e1,
                    weight: 9.0,
                },
                GraphUpdate::SetWeight {
                    edge: e2,
                    weight: 9.0,
                },
            ],
        )
        .unwrap();
    let k = outcome.dirty_nodes.len() as u64;
    assert_eq!(k, 3);
    assert_eq!(
        session.stats().aggregate_nodes_refreshed,
        k,
        "refresh must be proportional to the dirty frontier"
    );

    session
        .run(WalkRequest::new(&g, &w, &queries).steps(5))
        .unwrap();
    assert_eq!(
        session.stats().aggregates_built,
        1,
        "post-update drain must reuse the migrated aggregates"
    );
    assert_eq!(
        session.stats().profiles_carried,
        1,
        "weight-only update carries the profile"
    );
    assert_eq!(session.stats().digests_computed, 1, "no re-hash, ever");
}

#[test]
fn out_of_band_updates_do_not_grow_the_caches() {
    // Updates applied directly to the handle (bypassing the session) key
    // fresh cache rows per epoch; the superseded rows must be collected
    // when the newer epoch is served, or a long update stream would leak
    // one aggregate set per batch.
    let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 41);
    let g = WeightModel::UniformReal.apply(g, 41);
    let w = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..16).collect();

    let mut session = FlexiWalker::builder().build();
    let g = session.load_graph(g);
    for round in 0..5u64 {
        session
            .run(WalkRequest::new(&g, &w, &queries).steps(5))
            .unwrap();
        // Out-of-band: straight through the handle, session unaware.
        g.apply_updates(&[GraphUpdate::SetWeight {
            edge: round as usize,
            weight: 3.0 + round as f32,
        }])
        .unwrap();
    }
    session
        .run(WalkRequest::new(&g, &w, &queries).steps(5))
        .unwrap();
    assert_eq!(
        session.cached_aggregates(),
        1,
        "superseded epochs' aggregate rows must be collected"
    );
    assert!(session.cached_profiles() <= 1);
    assert_eq!(session.stats().digests_computed, 1);
}

#[test]
fn weight_promotion_re_profiles_instead_of_carrying_a_dead_key() {
    // A SetWeight batch on an unweighted graph promotes the edge props to
    // F32, changing every profile key's bytes-per-weight component: the
    // old profile must be dropped (and re-run on the next drain), not
    // carried to a key that can never be looked up.
    let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 13); // Unweighted.
    let w = UniformWalk;
    let queries: Vec<NodeId> = (0..16).collect();

    let mut session = FlexiWalker::builder().build();
    let g = session.load_graph(g);
    session
        .run(WalkRequest::new(&g, &w, &queries).steps(5))
        .unwrap();
    assert_eq!(session.stats().profiles_run, 1);

    session
        .apply_updates(
            &g,
            &[GraphUpdate::SetWeight {
                edge: 0,
                weight: 2.5,
            }],
        )
        .unwrap();
    assert!(g.graph().is_weighted(), "SetWeight promoted the props");
    assert_eq!(
        session.stats().profiles_carried,
        0,
        "a representation change must not carry the profile"
    );

    session
        .run(WalkRequest::new(&g, &w, &queries).steps(5))
        .unwrap();
    assert_eq!(
        session.stats().profiles_run,
        2,
        "the promoted representation re-profiles"
    );
    assert_eq!(session.cached_profiles(), 1, "the dead key was dropped");
}
