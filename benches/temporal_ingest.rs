//! Progressive-ingestion bench + gate: timestamped edge streams must
//! ingest at **flat per-edge cost** while the graph grows 100x.
//!
//! A session starts from a small timestamped graph and doubles its edge
//! count per rung with [`GraphUpdate::AddEdgeAt`] batches (batch size
//! proportional to the current graph, the amortised-doubling schedule),
//! interleaving a time-windowed temporal walk at every rung so the
//! mask/plan caches migrate live. If ingest re-did work proportional to
//! the *total* graph beyond the merge itself — re-digesting, rebuilding
//! every plan, recomputing masks from scratch — the per-edge nanoseconds
//! would climb with the ladder; the gate fails when the flatness ratio
//! (worst rung / best rung) regresses more than 2x against the
//! checked-in baseline.
//!
//! ```text
//! cargo bench --bench temporal_ingest [-- --smoke] [--json PATH]
//!                                     [--gate BASELINE]
//! ```
//!
//! - `--smoke`: 10k -> 160k edges (CI scale). Full: 10k -> 1.28M.
//! - `--json PATH`: write the result artifact to PATH.
//! - `--gate BASELINE`: compare the flatness ratio against a baseline
//!   JSON and exit non-zero on a > 2x regression (the ratio is
//!   dimensionless, so no host normalisation is needed).

use flexi_bench::json::{extract_number, Json};
use flexiwalker::prelude::*;
use std::time::Instant;

/// Deterministic stream randomness (splitmix64 step).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const START_EDGES: usize = 10_000;
const NODES: usize = 1 << 14;

struct Rung {
    edges_before: usize,
    batch_edges: usize,
    per_edge_ns: f64,
    walk_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json"));
            }
            "--gate" => {
                i += 1;
                gate_path = Some(value_of(&args, i, "--gate"));
            }
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
        i += 1;
    }
    let target_edges: usize = if smoke { 160_000 } else { 1_280_000 };
    let mode = if smoke { "smoke" } else { "full" };
    println!("# temporal_ingest [{mode}]: {START_EDGES} -> {target_edges}+ edges, doubling rungs");

    // The seed graph: timestamped from the start, stamps in [0, 1000).
    let mut rng = 0xF1E5u64;
    let mut builder = CsrBuilder::new(NODES);
    for _ in 0..START_EDGES {
        builder.push_full_at(
            (mix(&mut rng) % NODES as u64) as NodeId,
            (mix(&mut rng) % NODES as u64) as NodeId,
            0.5 + (mix(&mut rng) % 8) as f32,
            0,
            mix(&mut rng) % 1000,
        );
    }
    let csr = builder.build().expect("seed graph");

    let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let graph = session.load_graph(csr);
    let queries: Vec<NodeId> = (0..64).map(|q| (q * 131 % NODES) as NodeId).collect();
    // Warm the walker pipeline once so rung walks measure serving, not
    // one-time lowering/profiling.
    session
        .run(WalkRequest::new(&graph, "temporal_uniform", queries.clone()).steps(8))
        .expect("warm-up walk");

    let mut rungs: Vec<Rung> = Vec::new();
    let mut clock = 1000u64; // ingest stamps continue past the seed range
    while graph.graph().num_edges() < target_edges {
        let edges_before = graph.graph().num_edges();
        let batch_edges = edges_before; // doubling schedule
        let batch: Vec<GraphUpdate> = (0..batch_edges)
            .map(|_| {
                clock += mix(&mut rng) % 3;
                GraphUpdate::AddEdgeAt {
                    src: (mix(&mut rng) % NODES as u64) as NodeId,
                    dst: (mix(&mut rng) % NODES as u64) as NodeId,
                    weight: 0.5 + (mix(&mut rng) % 8) as f32,
                    label: 0,
                    time: clock,
                }
            })
            .collect();

        let start = Instant::now();
        let outcome = session
            .apply_updates(&graph, &batch)
            .expect("ingest applies");
        let ingest = start.elapsed();
        assert_eq!(
            outcome.version.epoch,
            rungs.len() as u64 + 1,
            "each rung is one epoch"
        );

        // A recent-slice walk on the fresh epoch: the mask and plan
        // caches migrate while the stream keeps growing.
        let window = TimeWindow::since(clock.saturating_sub(500));
        let wstart = Instant::now();
        let report = session
            .run(
                WalkRequest::new(&graph, "temporal_uniform", queries.clone())
                    .steps(8)
                    .window(window),
            )
            .expect("windowed walk serves");
        let walk = wstart.elapsed();
        assert!(report.steps_taken > 0, "the recent slice is walkable");

        let per_edge_ns = ingest.as_secs_f64() * 1e9 / batch_edges as f64;
        println!(
            "  [{edges_before:>9} + {batch_edges:>9} edges] ingest {per_edge_ns:>8.1} ns/edge, \
             windowed walk {:.2} ms",
            walk.as_secs_f64() * 1e3
        );
        rungs.push(Rung {
            edges_before,
            batch_edges,
            per_edge_ns,
            walk_ms: walk.as_secs_f64() * 1e3,
        });
    }

    let final_edges = graph.graph().num_edges();
    let stats = session.stats();
    println!("{stats}");
    let best = rungs.iter().map(|r| r.per_edge_ns).fold(f64::MAX, f64::min);
    let worst = rungs.iter().map(|r| r.per_edge_ns).fold(0.0, f64::max);
    let flatness = worst / best.max(1e-9);
    println!(
        "  per-edge ingest: best {best:.1} ns, worst {worst:.1} ns, \
         flatness {flatness:.2}x over a {}x growth",
        final_edges / START_EDGES
    );

    let doc = Json::obj([
        ("bench", Json::from("temporal_ingest")),
        ("mode", Json::from(mode)),
        ("start_edges", Json::from(START_EDGES)),
        ("final_edges", Json::from(final_edges)),
        ("rungs", {
            Json::arr(rungs.iter().map(|r| {
                Json::obj([
                    ("edges_before", Json::from(r.edges_before)),
                    ("batch_edges", Json::from(r.batch_edges)),
                    ("per_edge_ns", Json::from(r.per_edge_ns)),
                    ("walk_ms", Json::from(r.walk_ms)),
                ])
            }))
        }),
        ("best_per_edge_ns", Json::from(best)),
        ("worst_per_edge_ns", Json::from(worst)),
        ("flatness", Json::from(flatness)),
        ("epochs_applied", Json::from(stats.epochs_applied)),
        ("masks_migrated", Json::from(stats.masks_migrated)),
    ]);
    if let Some(path) = &json_path {
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("  (result recorded in {path})");
    }

    let mut failed = false;
    if final_edges < target_edges {
        eprintln!("GATE FAIL: ladder stopped at {final_edges} of {target_edges} edges");
        failed = true;
    }
    if stats.epochs_applied != rungs.len() as u64 {
        eprintln!(
            "GATE FAIL: {} epochs for {} ingest batches",
            stats.epochs_applied,
            rungs.len()
        );
        failed = true;
    }
    if stats.digests_computed != 1 {
        eprintln!(
            "GATE FAIL: ingest re-hashed the graph ({} digests)",
            stats.digests_computed
        );
        failed = true;
    }
    if let Some(path) = &gate_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        });
        match extract_number(&baseline, "flatness") {
            Some(base) => {
                // Flatness is a dimensionless growth ratio: a regression
                // means per-edge cost now climbs with total graph size.
                let allowed = base.max(1.0) * 2.0;
                if flatness > allowed {
                    eprintln!(
                        "GATE FAIL: ingest flatness {flatness:.2}x exceeds 2x the \
                         baseline ratio ({base:.2}x)"
                    );
                    failed = true;
                } else {
                    println!("  gate: flatness within 2x of baseline ({base:.2}x) — ok");
                }
            }
            None => {
                eprintln!("GATE FAIL: baseline {path} lacks a flatness field");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
