//! Sampler-state churn bench + gate: epoch-keyed incremental maintenance
//! must beat rebuild-per-epoch, and its per-epoch cost must scale with
//! the batch size **Δ**, not the graph size **|V|**.
//!
//! Each rung doubles the graph while the weight-only update batch stays
//! fixed at Δ edges. Two arms replay the identical epoch loop — apply a
//! batch, submit walks, drain — against a state-enabled session:
//!
//! - **incremental**: one handle maintained across epochs; alias/CDF
//!   tables are patched in place (O(Δ)) and re-served from the cache;
//! - **rebuild**: the post-batch snapshot is reloaded into a fresh handle
//!   every epoch, so digest, plans, aggregates and every sampler-state
//!   table are rebuilt from scratch (O(|V|)) — what a system without
//!   epoch-keyed state maintenance pays.
//!
//! ```text
//! cargo bench --bench churn_drain [-- --smoke] [--json PATH]
//!                                 [--gate BASELINE]
//! ```
//!
//! - `--smoke`: rungs 4k -> 16k nodes (CI scale). Full: 4k -> 64k.
//! - `--json PATH`: write the result artifact to PATH.
//! - `--gate BASELINE`: compare the largest-rung speedup against a
//!   baseline JSON and exit non-zero on a > 2x regression.
//!
//! Hard gates (always on): incremental must beat rebuild by >= 2x at the
//! largest rung; the incremental arm must patch — exactly one build per
//! stateful sampler ever, one patch per sampler per epoch; walk outputs
//! of the two arms must be bit-identical (refresh ≡ rebuild).

use flexi_bench::json::{extract_number, Json};
use flexiwalker::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Deterministic stream randomness (splitmix64 step).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Weight-only churn per epoch: fixed regardless of graph size.
const DELTA: usize = 256;
/// Epochs per rung.
const EPOCHS: usize = 6;
/// Stateful strategies registered (ALS + ITS + tcdf).
const STATEFUL: u64 = 3;

fn wgraph(nodes: usize, seed: u64) -> Csr {
    let mut rng = seed;
    let mut b = CsrBuilder::new(nodes);
    for src in 0..nodes as NodeId {
        for _ in 0..2 + (mix(&mut rng) % 4) {
            let dst = (mix(&mut rng) % nodes as u64) as NodeId;
            b.push_weighted(src, dst, 0.5 + (mix(&mut rng) % 8) as f32);
        }
    }
    b.build().expect("valid weighted graph")
}

fn session() -> Session {
    FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .register_sampler(Arc::new(AliasSampler))
        .register_sampler(Arc::new(ItsSampler))
        .register_sampler(Arc::new(TcdfSampler))
        .incremental_state(true)
        .build()
}

struct Arm {
    epoch_ms: f64,
    paths: Vec<Option<Vec<Vec<NodeId>>>>,
    stats: SessionStats,
}

/// One rung arm: warm up, then `EPOCHS` x (batch -> walks -> drain).
/// `rebuild` reloads the post-batch snapshot into a fresh handle each
/// epoch, defeating every cache on purpose.
fn run_arm(nodes: usize, seed: u64, rebuild: bool) -> Arm {
    let mut session = session();
    let mut g = session.load_graph(wgraph(nodes, seed));
    let queries: Vec<NodeId> = (0..64).map(|q| (q * 131 % nodes) as NodeId).collect();
    session
        .run(WalkRequest::new(&g, "uniform", queries.clone()).steps(8))
        .expect("warm-up walk");

    let mut rng = seed ^ 0xC0FF_EE00;
    let mut paths = Vec::new();
    let start = Instant::now();
    for _ in 0..EPOCHS {
        let edges = g.graph().num_edges();
        let batch: Vec<GraphUpdate> = (0..DELTA)
            .map(|_| GraphUpdate::SetWeight {
                edge: (mix(&mut rng) % edges as u64) as usize,
                weight: 0.25 + (mix(&mut rng) % 16) as f32 * 0.5,
            })
            .collect();
        session.apply_updates(&g, &batch).expect("batch applies");
        if rebuild {
            let snapshot = g.graph();
            g = session.load_graph(snapshot);
        }
        for _ in 0..2 {
            session.submit(
                WalkRequest::new(&g, "uniform", queries.clone())
                    .steps(8)
                    .record_paths(true),
            );
        }
        for (_, r) in session.drain() {
            paths.push(r.expect("drain succeeds").paths);
        }
    }
    let epoch_ms = start.elapsed().as_secs_f64() * 1e3 / EPOCHS as f64;
    Arm {
        epoch_ms,
        paths,
        stats: session.stats(),
    }
}

struct Rung {
    nodes: usize,
    edges: usize,
    inc_epoch_ms: f64,
    reb_epoch_ms: f64,
    speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json"));
            }
            "--gate" => {
                i += 1;
                gate_path = Some(value_of(&args, i, "--gate"));
            }
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
        i += 1;
    }
    let top: usize = if smoke { 1 << 14 } else { 1 << 16 };
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "# churn_drain [{mode}]: weight-only churn Δ={DELTA} x {EPOCHS} epochs, \
         incremental state vs rebuild-per-epoch"
    );

    let mut rungs: Vec<Rung> = Vec::new();
    let mut failed = false;
    let mut nodes = 1usize << 12;
    while nodes <= top {
        let seed = 0xC4A1u64 ^ nodes as u64;
        let edges = wgraph(nodes, seed).num_edges();
        let inc = run_arm(nodes, seed, false);
        let reb = run_arm(nodes, seed, true);
        if inc.paths != reb.paths {
            eprintln!("GATE FAIL: patched and rebuilt walks diverged at {nodes} nodes");
            failed = true;
        }
        // Structural proof that the incremental arm patched instead of
        // rebuilding: one build per stateful sampler ever, one patch per
        // sampler per epoch, and the rebuild arm re-built every epoch.
        if inc.stats.sampler_state_builds != STATEFUL {
            eprintln!(
                "GATE FAIL: incremental arm rebuilt state ({} builds at {nodes} nodes)",
                inc.stats.sampler_state_builds
            );
            failed = true;
        }
        if inc.stats.sampler_state_patches != STATEFUL * EPOCHS as u64 {
            eprintln!(
                "GATE FAIL: incremental arm patched {} times, expected {}",
                inc.stats.sampler_state_patches,
                STATEFUL * EPOCHS as u64
            );
            failed = true;
        }
        if reb.stats.sampler_state_builds < STATEFUL * EPOCHS as u64 {
            eprintln!(
                "GATE FAIL: rebuild arm only built {} state tables",
                reb.stats.sampler_state_builds
            );
            failed = true;
        }
        let speedup = reb.epoch_ms / inc.epoch_ms.max(1e-9);
        println!(
            "  [{nodes:>6} nodes / {edges:>7} edges] incremental {:>8.2} ms/epoch, \
             rebuild {:>8.2} ms/epoch, speedup {speedup:>5.2}x",
            inc.epoch_ms, reb.epoch_ms
        );
        rungs.push(Rung {
            nodes,
            edges,
            inc_epoch_ms: inc.epoch_ms,
            reb_epoch_ms: reb.epoch_ms,
            speedup,
        });
        nodes <<= 1;
    }

    let first = rungs.first().expect("at least one rung");
    let last = rungs.last().expect("at least one rung");
    let speedup_largest = last.speedup;
    // Δ is fixed while |V| grows: per-epoch incremental cost must stay
    // (near-)flat while the rebuild arm climbs with the graph.
    let delta_scaling = last.inc_epoch_ms / first.inc_epoch_ms.max(1e-9);
    let growth = (last.nodes / first.nodes) as f64;
    println!(
        "  largest rung: incremental beats rebuild {speedup_largest:.2}x; \
         incremental per-epoch cost grew {delta_scaling:.2}x over {growth:.0}x graph growth"
    );

    if speedup_largest < 2.0 {
        eprintln!(
            "GATE FAIL: incremental speedup {speedup_largest:.2}x at the largest rung \
             is below the required 2x"
        );
        failed = true;
    }

    let doc = Json::obj([
        ("bench", Json::from("churn_drain")),
        ("mode", Json::from(mode)),
        ("delta", Json::from(DELTA)),
        ("epochs_per_rung", Json::from(EPOCHS)),
        ("rungs", {
            Json::arr(rungs.iter().map(|r| {
                Json::obj([
                    ("nodes", Json::from(r.nodes)),
                    ("edges", Json::from(r.edges)),
                    ("inc_epoch_ms", Json::from(r.inc_epoch_ms)),
                    ("reb_epoch_ms", Json::from(r.reb_epoch_ms)),
                    ("speedup", Json::from(r.speedup)),
                ])
            }))
        }),
        ("speedup_largest", Json::from(speedup_largest)),
        ("delta_scaling", Json::from(delta_scaling)),
        ("graph_growth", Json::from(growth)),
    ]);
    if let Some(path) = &json_path {
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("  (result recorded in {path})");
    }

    if let Some(path) = &gate_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        });
        match extract_number(&baseline, "speedup_largest") {
            Some(base) => {
                // The speedup is a dimensionless ratio of the two arms on
                // the same host, so no normalisation is needed.
                let allowed = base / 2.0;
                if speedup_largest < allowed {
                    eprintln!(
                        "GATE FAIL: incremental speedup {speedup_largest:.2}x fell more \
                         than 2x below the baseline ({base:.2}x)"
                    );
                    failed = true;
                } else {
                    println!("  gate: speedup within 2x of baseline ({base:.2}x) — ok");
                }
            }
            None => {
                eprintln!("GATE FAIL: baseline {path} lacks a speedup_largest field");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
