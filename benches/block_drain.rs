//! Microbench + gate: out-of-core block-scheduled session drains.
//!
//! The scenario the topology exists for: a graph several times larger
//! than the resident byte budget. A `Topology::Single` session on a
//! device that cannot hold the whole graph must OOM; a
//! `Topology::out_of_core(budget, block)` session on the same device —
//! holding only a handful of CSR blocks resident at once — must serve.
//! The bench walks a ladder of oversize rungs (graph = {2, 4, 8}x the
//! resident budget), asserting the drain serves at every rung and that
//! the walk output at the harshest rung is bit-identical to a
//! single-device run on an unconstrained device, at 1 and N workers.
//! It gates the slowdown vs an all-resident drain at the smallest rung
//! (where residency, not the block scheduler, should dominate), the
//! block-cache hit rate there, and records everything in
//! `BENCH_blocks.json`.
//!
//! ```text
//! cargo bench --bench block_drain [-- --smoke] [--workers N]
//!                                 [--json PATH] [--gate BASELINE]
//! ```
//!
//! - `--smoke`: reduced scale for CI.
//! - `--json PATH`: write the result artifact to PATH.
//! - `--gate BASELINE`: compare against a checked-in baseline JSON and
//!   exit non-zero if out-of-core throughput regressed more than 2x
//!   (host-normalised) or the block-cache hit rate fell below half the
//!   baseline's. The OOM/serve/bit-identity/slowdown assertions always
//!   gate.

use flexi_bench::json::{extract_number, Json};
use flexiwalker::prelude::*;
use std::time::Instant;

struct Scale {
    mode: &'static str,
    graph_scale: u32,
    edges: usize,
    requests: usize,
    queries_per_request: usize,
    steps: usize,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    graph_scale: 13,
    edges: 65_536,
    requests: 12,
    queries_per_request: 192,
    steps: 16,
    samples: 5,
};

const SMOKE: Scale = Scale {
    mode: "smoke",
    graph_scale: 11,
    edges: 16_384,
    requests: 8,
    queries_per_request: 96,
    steps: 10,
    samples: 3,
};

/// The oversize ladder: each rung caps the resident budget at
/// `graph_bytes / rung`, split into blocks a quarter of the budget
/// each, so ~4 blocks fit at once and the harsher rungs keep the cache
/// under genuine eviction pressure the whole drain.
const RUNGS: [usize; 3] = [2, 4, 8];
const BLOCKS_RESIDENT: usize = 4;

/// The comparable walk-content footprint of one drained ticket (timing is
/// topology-dependent by design and deliberately absent).
type Record = (usize, Option<Vec<Vec<NodeId>>>, u64, Vec<(String, u64)>);

fn records(drained: Vec<(Ticket, Result<RunReport, EngineError>)>) -> Vec<Record> {
    drained
        .into_iter()
        .map(|(t, r)| {
            let r = r.expect("drain succeeds");
            let tally = r
                .sampler_steps
                .iter()
                .map(|(id, n)| (id.to_string(), n))
                .collect();
            (t.id(), r.paths, r.steps_taken, tally)
        })
        .collect()
}

/// One measured configuration: replays `samples + 1` identical submission
/// streams (first drain warms the caches) and returns the last drain's
/// records, the best drain throughput, and the final session stats.
fn measure(
    scale: &Scale,
    spec: &DeviceSpec,
    topology: Topology,
    workers: usize,
    csr: &Csr,
) -> (Vec<Record>, f64, SessionStats) {
    let mut session = FlexiWalker::builder()
        .device(spec.clone())
        .topology(topology)
        .workers(workers)
        .build();
    let graph = session.load_graph(csr.clone());
    let total_queries = (scale.requests * scale.queries_per_request) as f64;
    let mut best_qps = 0.0f64;
    let mut last = Vec::new();
    for sample in 0..=scale.samples {
        for r in 0..scale.requests {
            let base = (r * scale.queries_per_request) % csr.num_nodes();
            let queries: Vec<NodeId> = (0..scale.queries_per_request)
                .map(|i| ((base + i) % csr.num_nodes()) as NodeId)
                .collect();
            session.submit(
                WalkRequest::new(&graph, "node2vec", queries)
                    .steps(scale.steps)
                    .record_paths(true),
            );
        }
        let start = Instant::now();
        let drained = session.drain();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if sample > 0 {
            best_qps = best_qps.max(total_queries / secs);
        }
        last = records(drained);
    }
    (last, best_qps, session.stats())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = &FULL;
    let mut json_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let mut workers_flag: Option<usize> = None;
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = &SMOKE,
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json"));
            }
            "--gate" => {
                i += 1;
                gate_path = Some(value_of(&args, i, "--gate"));
            }
            "--workers" => {
                i += 1;
                match value_of(&args, i, "--workers").parse() {
                    Ok(n) => workers_flag = Some(n),
                    Err(_) => {
                        eprintln!("--workers requires a numeric argument");
                        std::process::exit(2);
                    }
                }
            }
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
        i += 1;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = workers_flag.unwrap_or_else(|| host.max(2));
    let csr = gen::rmat(scale.graph_scale, scale.edges, gen::RmatParams::SOCIAL, 41);
    let csr = WeightModel::UniformReal.apply(csr, 41);
    let graph_bytes = csr.memory_bytes();
    // The constrained device: VRAM holds ~60% of the graph — enough for
    // every rung's resident budget (the largest is graph/2), far less
    // than the whole graph. Single must OOM on it; out-of-core only
    // ever asks it to hold the budget.
    let mut small = DeviceSpec::a6000();
    small.vram_bytes = graph_bytes * 3 / 5;
    println!(
        "# block_drain [{}]: {} requests x {} queries, {} steps, \
         graph {:.1} KB, oversize rungs {RUNGS:?}, host parallelism {host}",
        scale.mode,
        scale.requests,
        scale.queries_per_request,
        scale.steps,
        graph_bytes as f64 / 1e3,
    );

    let mut failed = false;

    // 1. The footprint really exceeds the constrained device.
    let mut single = FlexiWalker::builder().device(small.clone()).build();
    let g = single.load_graph(csr.clone());
    let oom_single = matches!(
        single.run(WalkRequest::new(&g, "node2vec", &[0u32, 1][..]).steps(2)),
        Err(EngineError::OutOfMemory { .. })
    );
    if !oom_single {
        eprintln!("GATE FAIL: the single-device run should OOM on the constrained device");
        failed = true;
    }

    // 2. The all-resident reference: unconstrained single device.
    let (reference, qps_resident, _) =
        measure(scale, &DeviceSpec::a6000(), Topology::Single, 1, &csr);
    println!("  single device:      OOM as expected ({oom_single})");
    println!("  all-resident 1w:    {qps_resident:>12.0} queries/s");

    // 3. The rung ladder: every rung must serve the spilled graph on
    //    the constrained device with output identical to the reference.
    let mut rung_qps = Vec::new();
    let mut rung_hits = Vec::new();
    let mut harsh_stats = SessionStats::default();
    for (r, oversize) in RUNGS.iter().enumerate() {
        let resident_budget = graph_bytes / oversize;
        let block_bytes = (resident_budget / BLOCKS_RESIDENT).max(1024);
        let topology = Topology::out_of_core(resident_budget, block_bytes);
        let (seq, qps, stats) = measure(scale, &small, topology, 1, &csr);
        if seq != reference {
            eprintln!(
                "GATE FAIL: out-of-core walk output at {oversize}x oversize diverged \
                 from the all-resident run"
            );
            failed = true;
        }
        let launches = stats.block_loads + stats.block_hits;
        let hit_rate = stats.block_hits as f64 / (launches as f64).max(1.0);
        let slowdown = qps_resident / qps.max(1e-9);
        println!(
            "  out-of-core {oversize}x:     {qps:>12.0} queries/s  (slowdown {slowdown:.2}x, \
             {} blocks, {:.0}% hit rate, {} evictions)",
            stats.block_spills, // one session: spills == the block count
            hit_rate * 100.0,
            stats.block_evictions
        );
        rung_qps.push(qps);
        rung_hits.push(hit_rate);
        if r + 1 == RUNGS.len() {
            harsh_stats = stats;
        }
    }

    // 4. The block replay may not cost more than 2x the all-resident
    //    drain at the smallest rung, where most of the graph stays
    //    resident and the scheduler itself is the only overhead.
    let slowdown = qps_resident / rung_qps[0].max(1e-9);
    if slowdown > 2.0 {
        eprintln!(
            "GATE FAIL: out-of-core drain at {}x oversize is {slowdown:.2}x slower than \
             all-resident (allowed: 2x)",
            RUNGS[0]
        );
        failed = true;
    }
    let hit_rate = rung_hits[0];

    // 5. The harshest rung runs under real eviction pressure — and its
    //    drains stay bit-identical across worker counts.
    if harsh_stats.block_loads == 0 || harsh_stats.block_evictions == 0 {
        eprintln!(
            "GATE FAIL: the {}x rung must run under eviction pressure ({} loads, {} evictions)",
            RUNGS[RUNGS.len() - 1],
            harsh_stats.block_loads,
            harsh_stats.block_evictions
        );
        failed = true;
    }
    let harsh = RUNGS[RUNGS.len() - 1];
    let harsh_budget = graph_bytes / harsh;
    let harsh_topology =
        Topology::out_of_core(harsh_budget, (harsh_budget / BLOCKS_RESIDENT).max(1024));
    let (par, qps_nw, _) = measure(scale, &small, harsh_topology, workers, &csr);
    let identical_workers = par == reference;
    if !identical_workers {
        eprintln!(
            "GATE FAIL: workers({workers}) out-of-core drain at {harsh}x diverged \
             from the sequential reference"
        );
        failed = true;
    }
    let qps_1w = rung_qps[RUNGS.len() - 1];
    let speedup = qps_nw / qps_1w.max(1e-9);
    println!(
        "  out-of-core {harsh}x {workers}w:  {qps_nw:>12.0} queries/s  (speedup {speedup:.2}x)"
    );
    println!(
        "  block cache {harsh}x:    {} spilled, {} loads, {} hits, {} evictions",
        harsh_stats.block_spills,
        harsh_stats.block_loads,
        harsh_stats.block_hits,
        harsh_stats.block_evictions
    );
    println!("  identical reports:  rungs true, workers {identical_workers}");

    let doc = Json::obj([
        ("bench", Json::from("block_drain")),
        ("mode", Json::from(scale.mode)),
        ("host_parallelism", Json::from(host)),
        ("workers", Json::from(workers)),
        ("requests", Json::from(scale.requests)),
        ("queries_per_request", Json::from(scale.queries_per_request)),
        ("steps", Json::from(scale.steps)),
        ("graph_bytes", Json::from(graph_bytes)),
        ("oversize_rungs", Json::from(RUNGS.len())),
        ("oom_single", Json::from(oom_single)),
        ("identical_workers", Json::from(identical_workers)),
        ("block_spills", Json::from(harsh_stats.block_spills)),
        ("block_loads", Json::from(harsh_stats.block_loads)),
        ("block_hits", Json::from(harsh_stats.block_hits)),
        ("block_evictions", Json::from(harsh_stats.block_evictions)),
        ("hit_rate", Json::from(hit_rate)),
        ("slowdown_vs_resident", Json::from(slowdown)),
        ("throughput_resident_qps", Json::from(qps_resident)),
        ("throughput_smallest_rung_qps", Json::from(rung_qps[0])),
        ("throughput_1w_qps", Json::from(qps_1w)),
        ("throughput_nw_qps", Json::from(qps_nw)),
        ("speedup", Json::from(speedup)),
    ]);
    if let Some(path) = &json_path {
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("  (result recorded in {path})");
    }

    if let Some(path) = &gate_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        });
        match (
            extract_number(&baseline, "throughput_nw_qps"),
            extract_number(&baseline, "throughput_1w_qps"),
        ) {
            (Some(base_nw), Some(base_1w)) => {
                // Normalise the baseline to this host's sequential speed
                // (see parallel_drain): a slower runner scales the
                // expectation down; a faster one keeps the raw baseline.
                let host_factor = (qps_1w / base_1w.max(1e-9)).min(1.0);
                let expected = base_nw * host_factor;
                if qps_nw < expected / 2.0 {
                    eprintln!(
                        "GATE FAIL: out-of-core throughput regressed more than 2x \
                         ({qps_nw:.0} qps vs host-normalised baseline {expected:.0} qps)"
                    );
                    failed = true;
                } else {
                    println!(
                        "  gate: within 2x of host-normalised baseline ({expected:.0} qps) — ok"
                    );
                }
            }
            _ => {
                eprintln!("GATE FAIL: baseline {path} lacks throughput_nw_qps/throughput_1w_qps");
                failed = true;
            }
        }
        // The cache-policy gate: hit rate is hardware-independent, so it
        // compares unnormalised. Half the baseline is a policy
        // regression (e.g. the resident-first tiebreak disappearing),
        // not noise.
        match extract_number(&baseline, "hit_rate") {
            Some(base_hits) => {
                if hit_rate < base_hits / 2.0 {
                    eprintln!(
                        "GATE FAIL: block-cache hit rate collapsed \
                         ({:.0}% vs baseline {:.0}%)",
                        hit_rate * 100.0,
                        base_hits * 100.0
                    );
                    failed = true;
                } else {
                    println!(
                        "  gate: hit rate {:.0}% vs baseline {:.0}% — ok",
                        hit_rate * 100.0,
                        base_hits * 100.0
                    );
                }
            }
            None => {
                eprintln!("GATE FAIL: baseline {path} lacks hit_rate");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
