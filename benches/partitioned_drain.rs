//! Microbench + gate: partitioned (graph-sharded) session drains.
//!
//! The scenario the topology exists for: a device whose VRAM holds only
//! ~40% of the graph. A `Topology::Single` session must OOM; a
//! `Topology::partitioned(4)` session — each device holding its ~25%
//! shard plus the row pointers — must serve, with walk output
//! bit-identical to a single-device run on an unconstrained device and
//! at every worker count. The bench asserts all three, measures drain
//! throughput and migration accounting, and records everything in
//! `BENCH_partitioned.json`.
//!
//! ```text
//! cargo bench --bench partitioned_drain [-- --smoke] [--workers N]
//!                                       [--json PATH] [--gate BASELINE]
//! ```
//!
//! - `--smoke`: reduced scale for CI.
//! - `--json PATH`: write the result artifact to PATH.
//! - `--gate BASELINE`: compare against a checked-in baseline JSON and
//!   exit non-zero if partitioned throughput regressed more than 2x
//!   (host-normalised). The OOM/fit/bit-identity assertions always gate.

use flexi_bench::json::{extract_number, Json};
use flexiwalker::prelude::*;
use std::time::Instant;

struct Scale {
    mode: &'static str,
    graph_scale: u32,
    edges: usize,
    requests: usize,
    queries_per_request: usize,
    steps: usize,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    graph_scale: 13,
    edges: 65_536,
    requests: 12,
    queries_per_request: 192,
    steps: 16,
    samples: 5,
};

const SMOKE: Scale = Scale {
    mode: "smoke",
    graph_scale: 11,
    edges: 16_384,
    requests: 8,
    queries_per_request: 96,
    steps: 10,
    samples: 3,
};

const DEVICES: usize = 4;

/// The comparable walk-content footprint of one drained ticket (timing is
/// topology-dependent by design and deliberately absent).
type Record = (usize, Option<Vec<Vec<NodeId>>>, u64, Vec<(String, u64)>);

fn records(drained: Vec<(Ticket, Result<RunReport, EngineError>)>) -> Vec<Record> {
    drained
        .into_iter()
        .map(|(t, r)| {
            let r = r.expect("drain succeeds");
            let tally = r
                .sampler_steps
                .iter()
                .map(|(id, n)| (id.to_string(), n))
                .collect();
            (t.id(), r.paths, r.steps_taken, tally)
        })
        .collect()
}

/// One measured configuration: replays `samples + 1` identical submission
/// streams (first drain warms the caches) and returns the last drain's
/// records, the best drain throughput, and the final session stats.
fn measure(
    scale: &Scale,
    spec: &DeviceSpec,
    topology: Topology,
    workers: usize,
    csr: &Csr,
) -> (Vec<Record>, f64, SessionStats) {
    let mut session = FlexiWalker::builder()
        .device(spec.clone())
        .topology(topology)
        .workers(workers)
        .build();
    let graph = session.load_graph(csr.clone());
    let total_queries = (scale.requests * scale.queries_per_request) as f64;
    let mut best_qps = 0.0f64;
    let mut last = Vec::new();
    for sample in 0..=scale.samples {
        for r in 0..scale.requests {
            let base = (r * scale.queries_per_request) % csr.num_nodes();
            let queries: Vec<NodeId> = (0..scale.queries_per_request)
                .map(|i| ((base + i) % csr.num_nodes()) as NodeId)
                .collect();
            session.submit(
                WalkRequest::new(&graph, "node2vec", queries)
                    .steps(scale.steps)
                    .record_paths(true),
            );
        }
        let start = Instant::now();
        let drained = session.drain();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if sample > 0 {
            best_qps = best_qps.max(total_queries / secs);
        }
        last = records(drained);
    }
    (last, best_qps, session.stats())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = &FULL;
    let mut json_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let mut workers_flag: Option<usize> = None;
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = &SMOKE,
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json"));
            }
            "--gate" => {
                i += 1;
                gate_path = Some(value_of(&args, i, "--gate"));
            }
            "--workers" => {
                i += 1;
                match value_of(&args, i, "--workers").parse() {
                    Ok(n) => workers_flag = Some(n),
                    Err(_) => {
                        eprintln!("--workers requires a numeric argument");
                        std::process::exit(2);
                    }
                }
            }
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
        i += 1;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = workers_flag.unwrap_or_else(|| host.max(2));
    let csr = gen::rmat(scale.graph_scale, scale.edges, gen::RmatParams::SOCIAL, 41);
    let csr = WeightModel::UniformReal.apply(csr, 41);
    // The constrained device: VRAM holds ~40% of the graph, so a single
    // (or duplicated-graph) resident copy cannot fit, while each of the
    // DEVICES hash partitions (~1/DEVICES of the edges + row pointers)
    // can.
    let mut small = DeviceSpec::a6000();
    small.vram_bytes = csr.memory_bytes() * 2 / 5 + csr.row_ptr().len() * 8;
    let graph_mb = csr.memory_bytes() as f64 / 1e6;
    println!(
        "# partitioned_drain [{}]: {} requests x {} queries, {} steps, \
         graph {graph_mb:.1} MB vs {:.1} MB VRAM, {DEVICES} devices, host parallelism {host}",
        scale.mode,
        scale.requests,
        scale.queries_per_request,
        scale.steps,
        small.vram_bytes as f64 / 1e6,
    );

    let mut failed = false;

    // 1. The footprint really exceeds one constrained device.
    let mut single = FlexiWalker::builder().device(small.clone()).build();
    let g = single.load_graph(csr.clone());
    let oom_single = matches!(
        single.run(WalkRequest::new(&g, "node2vec", &[0u32, 1][..]).steps(2)),
        Err(EngineError::OutOfMemory { .. })
    );
    if !oom_single {
        eprintln!("GATE FAIL: the single-device run should OOM on the constrained device");
        failed = true;
    }

    // 2. Partitioned drains serve that graph — at 1 and N workers,
    //    bit-identically.
    let topology = Topology::partitioned(DEVICES);
    let (seq, qps_1w, _) = measure(scale, &small, topology, 1, &csr);
    let (par, qps_nw, stats) = measure(scale, &small, topology, workers, &csr);
    let identical_workers = seq == par;
    if !identical_workers {
        eprintln!("GATE FAIL: workers(1) and workers({workers}) partitioned drains diverged");
        failed = true;
    }

    // 3. ... and the walk output matches a single unconstrained device.
    let (reference, _, _) = measure(scale, &DeviceSpec::a6000(), Topology::Single, 1, &csr);
    let identical_topology = reference == par;
    if !identical_topology {
        eprintln!("GATE FAIL: partitioned walk output diverged from the single-device run");
        failed = true;
    }

    let speedup = qps_nw / qps_1w.max(1e-9);
    let migration_share = stats.migrations as f64
        / par.iter().map(|(_, _, s, _)| *s).sum::<u64>().max(1) as f64
        / (scale.samples + 1) as f64;
    println!("  single device:       OOM as expected ({oom_single})");
    println!("  partitioned 1w:     {qps_1w:>12.0} queries/s");
    println!("  partitioned {workers}w:     {qps_nw:>12.0} queries/s  (speedup {speedup:.2}x)");
    println!(
        "  migrations:         {:>12}  ({:.1}% of steps), {:.3e}s on the link",
        stats.migrations,
        migration_share * 100.0,
        stats.link_seconds
    );
    println!(
        "  plan cache:         {} build(s), {} hits, {} refreshes",
        stats.plan_builds, stats.plan_hits, stats.plan_refreshes
    );
    println!("  identical reports:  workers {identical_workers}, topology {identical_topology}");

    let doc = Json::obj([
        ("bench", Json::from("partitioned_drain")),
        ("mode", Json::from(scale.mode)),
        ("host_parallelism", Json::from(host)),
        ("workers", Json::from(workers)),
        ("devices", Json::from(DEVICES)),
        ("requests", Json::from(scale.requests)),
        ("queries_per_request", Json::from(scale.queries_per_request)),
        ("steps", Json::from(scale.steps)),
        ("graph_bytes", Json::from(csr.memory_bytes())),
        ("vram_bytes", Json::from(small.vram_bytes)),
        ("oom_single", Json::from(oom_single)),
        ("identical_workers", Json::from(identical_workers)),
        ("identical_topology", Json::from(identical_topology)),
        ("migrations", Json::from(stats.migrations)),
        ("link_seconds", Json::from(stats.link_seconds)),
        ("plan_builds", Json::from(stats.plan_builds)),
        ("throughput_1w_qps", Json::from(qps_1w)),
        ("throughput_nw_qps", Json::from(qps_nw)),
        ("speedup", Json::from(speedup)),
    ]);
    if let Some(path) = &json_path {
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("  (result recorded in {path})");
    }

    if stats.plan_builds != 1 {
        eprintln!(
            "GATE FAIL: expected exactly one partition-plan build, saw {}",
            stats.plan_builds
        );
        failed = true;
    }
    if let Some(path) = &gate_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        });
        match (
            extract_number(&baseline, "throughput_nw_qps"),
            extract_number(&baseline, "throughput_1w_qps"),
        ) {
            (Some(base_nw), Some(base_1w)) => {
                // Normalise the baseline to this host's sequential speed
                // (see parallel_drain): a slower runner scales the
                // expectation down; a faster one keeps the raw baseline.
                let host_factor = (qps_1w / base_1w.max(1e-9)).min(1.0);
                let expected = base_nw * host_factor;
                if qps_nw < expected / 2.0 {
                    eprintln!(
                        "GATE FAIL: partitioned throughput regressed more than 2x \
                         ({qps_nw:.0} qps vs host-normalised baseline {expected:.0} qps)"
                    );
                    failed = true;
                } else {
                    println!(
                        "  gate: within 2x of host-normalised baseline ({expected:.0} qps) — ok"
                    );
                }
            }
            _ => {
                eprintln!("GATE FAIL: baseline {path} lacks throughput_nw_qps/throughput_1w_qps");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
