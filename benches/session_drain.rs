//! Microbench: session drains on a cached graph must not scale with E.
//!
//! The pre-handle session re-hashed the entire edge list (an O(E) digest)
//! on every drain to key its caches. With epoch-versioned handles the
//! digest is computed once at `load_graph` and evolved from the epoch
//! counter, so the per-drain cost of a cached graph is the walk itself.
//! This bench drains a fixed query set over graphs of growing edge count
//! at constant average degree: near-flat times demonstrate the fix (the
//! old design grew linearly in E here).
//!
//! ```text
//! cargo bench --bench session_drain [-- --smoke]
//! ```
//!
//! `--smoke` runs the smallest scale only with fewer samples — the mode
//! the `bench-gate` CI job uses for regression visibility.

use flexi_bench::microbench::BenchGroup;
use flexiwalker::prelude::*;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut group = BenchGroup::new("session_drain_cached").sample_size(if smoke { 3 } else { 10 });
    let workload = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..64).collect();

    // Constant average degree (8): edge count grows 16x while per-walk
    // work stays put.
    let scales: &[(u32, usize)] = if smoke {
        &[(12u32, 32_768usize)]
    } else {
        &[(12, 32_768), (14, 131_072), (16, 524_288)]
    };
    for &(scale, edges) in scales {
        let csr = gen::rmat(scale, edges, gen::RmatParams::SOCIAL, 99);
        let csr = WeightModel::UniformReal.apply(csr, 99);
        let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
        let graph = session.load_graph(csr);
        // Warm: the one digest, the one preprocess, the one profile.
        session
            .run(WalkRequest::new(&graph, &workload, &queries).steps(10))
            .expect("warm-up run");

        group.bench_function(format!("drain_64q_{edges}e"), || {
            session
                .run(WalkRequest::new(&graph, &workload, &queries).steps(10))
                .expect("cached drain");
        });

        let stats = session.stats();
        assert_eq!(
            stats.digests_computed, 1,
            "cached drains must never re-hash the graph"
        );
        println!(
            "  [{edges} edges] digests computed: {} (once, at load_graph)",
            stats.digests_computed
        );
    }
    group.finish();
}
