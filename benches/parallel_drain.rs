//! Microbench + gate: parallel drain vs the sequential path.
//!
//! Drains the same submission stream through `workers(1)` and
//! `workers(N)` sessions, asserts the per-ticket reports are
//! **bit-identical** (the executor's headline guarantee), measures drain
//! throughput for both, and records everything in
//! `BENCH_parallel_drain.json`.
//!
//! ```text
//! cargo bench --bench parallel_drain [-- --smoke] [--workers N]
//!                                    [--json PATH] [--gate BASELINE]
//! ```
//!
//! - `--smoke`: reduced scale for CI.
//! - `--json PATH`: write the result artifact to PATH.
//! - `--gate BASELINE`: compare against a checked-in baseline JSON and
//!   exit non-zero if multi-worker throughput regressed more than 2x.
//!   Divergent 1-worker vs N-worker reports always exit non-zero, and on
//!   a host with ≥ 4 cores the multi-worker drain must beat `workers(1)`.

use flexi_bench::json::{extract_number, Json};
use flexiwalker::prelude::*;
use std::time::Instant;

struct Scale {
    mode: &'static str,
    graph_scale: u32,
    edges: usize,
    requests: usize,
    queries_per_request: usize,
    steps: usize,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    graph_scale: 13,
    edges: 65_536,
    requests: 16,
    queries_per_request: 256,
    steps: 20,
    samples: 5,
};

// Large enough that one drain takes several milliseconds: the speedup
// and regression gates below must measure the executor, not scoped-thread
// spawn overhead or scheduler jitter on a busy CI runner.
const SMOKE: Scale = Scale {
    mode: "smoke",
    graph_scale: 11,
    edges: 16_384,
    requests: 12,
    queries_per_request: 128,
    steps: 10,
    samples: 3,
};

/// The comparable footprint of one drained ticket.
type Record = (usize, Option<Vec<Vec<NodeId>>>, u64, u64);

fn records(drained: Vec<(Ticket, Result<RunReport, EngineError>)>) -> Vec<Record> {
    drained
        .into_iter()
        .map(|(t, r)| {
            let r = r.expect("drain succeeds");
            let (steps, sim) = (r.steps_taken, r.sim_seconds.to_bits());
            (t.id(), r.paths, steps, sim)
        })
        .collect()
}

/// One measured configuration: builds a session, replays `samples + 1`
/// identical submission streams (first drain warms the caches), and
/// returns the records of the last drain plus the best drain throughput.
fn measure(scale: &Scale, workers: usize, csr: &Csr) -> (Vec<Record>, f64) {
    let workload = Node2Vec::paper(true);
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .workers(workers)
        .build();
    let graph = session.load_graph(csr.clone());
    let total_queries = (scale.requests * scale.queries_per_request) as f64;
    let mut best_qps = 0.0f64;
    let mut last = Vec::new();
    for sample in 0..=scale.samples {
        for r in 0..scale.requests {
            let base = (r * scale.queries_per_request) % csr.num_nodes();
            let queries: Vec<NodeId> = (0..scale.queries_per_request)
                .map(|i| ((base + i) % csr.num_nodes()) as NodeId)
                .collect();
            session.submit(
                WalkRequest::new(&graph, &workload, queries)
                    .steps(scale.steps)
                    .record_paths(true),
            );
        }
        let start = Instant::now();
        let drained = session.drain();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if sample > 0 {
            best_qps = best_qps.max(total_queries / secs);
        }
        last = records(drained);
    }
    (last, best_qps)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = &FULL;
    let mut json_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let mut workers_flag: Option<usize> = None;
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = &SMOKE,
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json"));
            }
            "--gate" => {
                i += 1;
                gate_path = Some(value_of(&args, i, "--gate"));
            }
            "--workers" => {
                i += 1;
                match value_of(&args, i, "--workers").parse() {
                    Ok(n) => workers_flag = Some(n),
                    Err(_) => {
                        eprintln!("--workers requires a numeric argument");
                        std::process::exit(2);
                    }
                }
            }
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
        i += 1;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = workers_flag.unwrap_or_else(|| host.max(2));
    let csr = gen::rmat(scale.graph_scale, scale.edges, gen::RmatParams::SOCIAL, 77);
    let csr = WeightModel::UniformReal.apply(csr, 77);
    println!(
        "# parallel_drain [{}]: {} requests x {} queries, {} steps, host parallelism {host}",
        scale.mode, scale.requests, scale.queries_per_request, scale.steps
    );

    let (seq, qps_1w) = measure(scale, 1, &csr);
    let (par, qps_nw) = measure(scale, workers, &csr);
    let identical = seq == par;
    let speedup = qps_nw / qps_1w.max(1e-9);
    println!("  workers(1):         {qps_1w:>12.0} queries/s");
    println!("  workers({workers}):         {qps_nw:>12.0} queries/s");
    println!("  speedup:            {speedup:>12.2}x  (identical reports: {identical})");

    let doc = Json::obj([
        ("bench", Json::from("parallel_drain")),
        ("mode", Json::from(scale.mode)),
        ("host_parallelism", Json::from(host)),
        ("workers", Json::from(workers)),
        ("requests", Json::from(scale.requests)),
        ("queries_per_request", Json::from(scale.queries_per_request)),
        ("steps", Json::from(scale.steps)),
        ("identical", Json::from(identical)),
        ("throughput_1w_qps", Json::from(qps_1w)),
        ("throughput_nw_qps", Json::from(qps_nw)),
        ("speedup", Json::from(speedup)),
    ]);
    if let Some(path) = &json_path {
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("  (result recorded in {path})");
    }

    let mut failed = false;
    if !identical {
        eprintln!("GATE FAIL: workers(1) and workers({workers}) drains diverged");
        failed = true;
    }
    // Full mode demands a strict win; smoke mode (short drains on shared
    // CI runners) keeps a noise margin so the gate flags real scheduling
    // regressions without flaking on jitter.
    let floor = if scale.mode == "full" { 1.0 } else { 0.85 };
    if host >= 4 && speedup <= floor {
        eprintln!(
            "GATE FAIL: multi-worker drain must beat workers(1) on a \
             {host}-core host (speedup {speedup:.2}x, floor {floor:.2}x)"
        );
        failed = true;
    }
    if let Some(path) = &gate_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        });
        match (
            extract_number(&baseline, "throughput_nw_qps"),
            extract_number(&baseline, "throughput_1w_qps"),
        ) {
            (Some(base_nw), Some(base_1w)) => {
                // Normalise the baseline to this host's sequential speed:
                // a runner slower than the baseline machine scales the
                // expectation down proportionally, so the 2x gate measures
                // the executor, not the hardware. A faster runner keeps
                // the raw baseline (strictly easier to pass).
                let host_factor = (qps_1w / base_1w.max(1e-9)).min(1.0);
                let expected = base_nw * host_factor;
                if qps_nw < expected / 2.0 {
                    eprintln!(
                        "GATE FAIL: multi-worker throughput regressed more than 2x \
                         ({qps_nw:.0} qps vs host-normalised baseline {expected:.0} qps)"
                    );
                    failed = true;
                } else {
                    println!(
                        "  gate: within 2x of host-normalised baseline ({expected:.0} qps) — ok"
                    );
                }
            }
            _ => {
                eprintln!("GATE FAIL: baseline {path} lacks throughput_nw_qps/throughput_1w_qps");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
