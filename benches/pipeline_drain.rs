//! Microbench + gate: the pipelined drain executor's overlap claim.
//!
//! Drains the same submission stream through a `Partitioned(2)` session —
//! the topology whose per-job merges do real work (walker-migration
//! census over recorded paths plus link accounting) — at workers
//! {1, 2, 4, 8} ∩ host, asserts every configuration produces
//! **bit-identical** per-ticket reports, and then gates on the executor's
//! pipelining evidence: `SessionStats::stages` must show the merge work
//! hidden behind shard launches still in flight (a small *merge tail*),
//! not serialised after the last launch as the old staged executor did.
//!
//! ```text
//! cargo bench --bench pipeline_drain [-- --smoke] [--workers N]
//!                                    [--json PATH] [--gate BASELINE]
//! ```
//!
//! - `--smoke`: reduced scale for CI.
//! - `--json PATH`: write the result artifact (including the per-stage
//!   timing block shared with `repro --json`) to PATH.
//! - `--gate BASELINE`: compare against a checked-in baseline JSON and
//!   exit non-zero if multi-worker throughput regressed more than 2x.
//!   Divergent reports always exit non-zero; on a host with ≥ 4 cores the
//!   multi-worker drain must beat `workers(1)` **and** hide at least half
//!   of its merge work behind launches (`merge_tail < 0.5 × merge work`).

use flexi_bench::json::{extract_number, stages_obj, Json};
use flexiwalker::prelude::*;
use std::time::Instant;

struct Scale {
    mode: &'static str,
    graph_scale: u32,
    edges: usize,
    requests: usize,
    queries_per_request: usize,
    steps: usize,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    graph_scale: 13,
    edges: 65_536,
    requests: 16,
    queries_per_request: 256,
    steps: 20,
    samples: 5,
};

// Large enough that the per-job migration census is measurable merge
// work: the tail-fraction gate below must see the pipeline hiding real
// seconds, not clock noise around empty merges.
const SMOKE: Scale = Scale {
    mode: "smoke",
    graph_scale: 11,
    edges: 16_384,
    requests: 12,
    queries_per_request: 128,
    steps: 10,
    samples: 3,
};

/// Merge work below this (cumulative over all measured drains) is too
/// small to gate a tail fraction on without flaking on timer noise.
const MIN_GATED_MERGE_WORK_SECONDS: f64 = 1e-4;

/// The comparable footprint of one drained ticket.
type Record = (usize, Option<Vec<Vec<NodeId>>>, u64, u64);

fn records(drained: Vec<(Ticket, Result<RunReport, EngineError>)>) -> Vec<Record> {
    drained
        .into_iter()
        .map(|(t, r)| {
            let r = r.expect("drain succeeds");
            let (steps, sim) = (r.steps_taken, r.sim_seconds.to_bits());
            (t.id(), r.paths, steps, sim)
        })
        .collect()
}

fn submit_stream(
    scale: &Scale,
    nodes: usize,
    session: &mut Session,
    graph: &GraphHandle,
    workload: &WalkerHandle,
) {
    for r in 0..scale.requests {
        let base = (r * scale.queries_per_request) % nodes;
        let queries: Vec<NodeId> = (0..scale.queries_per_request)
            .map(|i| ((base + i) % nodes) as NodeId)
            .collect();
        session.submit(
            WalkRequest::new(graph, workload, queries)
                .steps(scale.steps)
                .record_paths(true),
        );
    }
}

fn build_session(workers: usize, csr: &Csr) -> (Session, GraphHandle, WalkerHandle) {
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .workers(workers)
        .topology(Topology::partitioned(2))
        .build();
    let graph = session.load_graph(csr.clone());
    let workload = session.load_walker("node2vec").expect("built-in walker");
    (session, graph, workload)
}

/// One measured configuration: replays `samples + 1` identical submission
/// streams (first drain warms the caches), returning the records of the
/// last drain, the best drain throughput, and the cumulative per-stage
/// timing of the *measured* drains (the warm-up drain is excluded so the
/// stage split reflects steady-state behaviour).
fn measure(scale: &Scale, workers: usize, csr: &Csr) -> (Vec<Record>, f64, StageTiming) {
    let (mut session, graph, workload) = build_session(workers, csr);
    let total_queries = (scale.requests * scale.queries_per_request) as f64;
    let mut best_qps = 0.0f64;
    let mut last = Vec::new();
    let mut warm_stages = StageTiming::default();
    for sample in 0..=scale.samples {
        submit_stream(scale, csr.num_nodes(), &mut session, &graph, &workload);
        let start = Instant::now();
        let drained = session.drain();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if sample == 0 {
            warm_stages = session.stats().stages;
        } else {
            best_qps = best_qps.max(total_queries / secs);
        }
        last = records(drained);
    }
    let mut stages = session.stats().stages;
    stages.prepare_seconds -= warm_stages.prepare_seconds;
    stages.launch_seconds -= warm_stages.launch_seconds;
    stages.merge_seconds -= warm_stages.merge_seconds;
    stages.replay_seconds -= warm_stages.replay_seconds;
    stages.merge_tail_seconds -= warm_stages.merge_tail_seconds;
    stages.wall_seconds -= warm_stages.wall_seconds;
    (last, best_qps, stages)
}

/// A single cold drain for worker counts that only need the identity
/// check (determinism is independent of cache warmth).
fn identity_records(scale: &Scale, workers: usize, csr: &Csr) -> Vec<Record> {
    let (mut session, graph, workload) = build_session(workers, csr);
    submit_stream(scale, csr.num_nodes(), &mut session, &graph, &workload);
    records(session.drain())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = &FULL;
    let mut json_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let mut workers_flag: Option<usize> = None;
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = &SMOKE,
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json"));
            }
            "--gate" => {
                i += 1;
                gate_path = Some(value_of(&args, i, "--gate"));
            }
            "--workers" => {
                i += 1;
                match value_of(&args, i, "--workers").parse() {
                    Ok(n) => workers_flag = Some(n),
                    Err(_) => {
                        eprintln!("--workers requires a numeric argument");
                        std::process::exit(2);
                    }
                }
            }
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
        i += 1;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = workers_flag.unwrap_or_else(|| host.clamp(2, 8));
    let csr = gen::rmat(scale.graph_scale, scale.edges, gen::RmatParams::SOCIAL, 77);
    let csr = WeightModel::UniformReal.apply(csr, 77);
    println!(
        "# pipeline_drain [{}]: partitioned(2), {} requests x {} queries, {} steps, \
         host parallelism {host}",
        scale.mode, scale.requests, scale.queries_per_request, scale.steps
    );

    let (seq, qps_1w, stages_1w) = measure(scale, 1, &csr);
    let (par, qps_nw, stages_nw) = measure(scale, workers, &csr);
    let mut identical = seq == par;
    // The full determinism sweep: every standard worker count this host
    // can exercise must reproduce the same records bit-for-bit.
    for &w in &[2usize, 4, 8] {
        if w == workers || w > host.max(2) {
            continue;
        }
        if identity_records(scale, w, &csr) != seq {
            eprintln!("GATE FAIL: workers({w}) drain diverged from workers(1)");
            identical = false;
        }
    }
    let speedup = qps_nw / qps_1w.max(1e-9);
    let merge_work = stages_nw.merge_work_seconds();
    let tail_fraction = if merge_work > 0.0 {
        stages_nw.merge_tail_seconds / merge_work
    } else {
        0.0
    };
    println!("  workers(1):         {qps_1w:>12.0} queries/s");
    println!("  workers({workers}):         {qps_nw:>12.0} queries/s");
    println!("  speedup:            {speedup:>12.2}x  (identical reports: {identical})");
    println!("  stages workers(1):  {stages_1w}");
    println!("  stages workers({workers}):  {stages_nw}");
    println!(
        "  merge tail:         {:>12.6}s of {merge_work:.6}s merge work ({:.0}% unhidden)",
        stages_nw.merge_tail_seconds,
        tail_fraction * 100.0
    );

    let doc = Json::obj([
        ("bench", Json::from("pipeline_drain")),
        ("mode", Json::from(scale.mode)),
        ("host_parallelism", Json::from(host)),
        ("workers", Json::from(workers)),
        ("requests", Json::from(scale.requests)),
        ("queries_per_request", Json::from(scale.queries_per_request)),
        ("steps", Json::from(scale.steps)),
        ("identical", Json::from(identical)),
        ("throughput_1w_qps", Json::from(qps_1w)),
        ("throughput_nw_qps", Json::from(qps_nw)),
        ("speedup", Json::from(speedup)),
        ("merge_tail_fraction", Json::from(tail_fraction)),
        ("stages_1w", stages_obj(&stages_1w)),
        ("stages_nw", stages_obj(&stages_nw)),
    ]);
    if let Some(path) = &json_path {
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("  (result recorded in {path})");
    }

    let mut failed = false;
    if !identical {
        eprintln!("GATE FAIL: drains diverged across worker counts");
        failed = true;
    }
    // Full mode demands a strict win; smoke mode (short drains on shared
    // CI runners) keeps a noise margin so the gate flags real scheduling
    // regressions without flaking on jitter.
    let floor = if scale.mode == "full" { 1.0 } else { 0.85 };
    if host >= 4 && speedup <= floor {
        eprintln!(
            "GATE FAIL: multi-worker drain must beat workers(1) on a \
             {host}-core host (speedup {speedup:.2}x, floor {floor:.2}x)"
        );
        failed = true;
    }
    // The pipelining proof: with ≥ 4 workers on ≥ 4 cores, most per-job
    // merge work must run while launches are still in flight. A staged
    // executor (barrier, then merge everything) scores a tail fraction
    // of ~1.0 here and fails.
    if host >= 4 && workers >= 4 {
        if merge_work >= MIN_GATED_MERGE_WORK_SECONDS {
            if tail_fraction >= 0.5 {
                eprintln!(
                    "GATE FAIL: merge tail {:.6}s is {:.0}% of {merge_work:.6}s merge work \
                     — merges are not overlapping shard launches",
                    stages_nw.merge_tail_seconds,
                    tail_fraction * 100.0
                );
                failed = true;
            } else {
                println!(
                    "  gate: {:.0}% of merge work hidden behind launches — ok",
                    (1.0 - tail_fraction) * 100.0
                );
            }
        } else {
            println!(
                "  gate: merge work {merge_work:.6}s below {MIN_GATED_MERGE_WORK_SECONDS}s \
                 floor — tail fraction not gated"
            );
        }
    }
    if let Some(path) = &gate_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        });
        match (
            extract_number(&baseline, "throughput_nw_qps"),
            extract_number(&baseline, "throughput_1w_qps"),
        ) {
            (Some(base_nw), Some(base_1w)) => {
                // Normalise the baseline to this host's sequential speed:
                // a runner slower than the baseline machine scales the
                // expectation down proportionally, so the 2x gate measures
                // the executor, not the hardware. A faster runner keeps
                // the raw baseline (strictly easier to pass).
                let host_factor = (qps_1w / base_1w.max(1e-9)).min(1.0);
                let expected = base_nw * host_factor;
                if qps_nw < expected / 2.0 {
                    eprintln!(
                        "GATE FAIL: multi-worker throughput regressed more than 2x \
                         ({qps_nw:.0} qps vs host-normalised baseline {expected:.0} qps)"
                    );
                    failed = true;
                } else {
                    println!(
                        "  gate: within 2x of host-normalised baseline ({expected:.0} qps) — ok"
                    );
                }
            }
            _ => {
                eprintln!("GATE FAIL: baseline {path} lacks throughput_nw_qps/throughput_1w_qps");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
