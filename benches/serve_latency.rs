//! Serving-latency bench + gate: sustained mixed read/write traffic
//! through a [`WalkServer`].
//!
//! Closed-loop client threads submit walk requests (alternating walkers)
//! while one of them interleaves live update batches, so the server keeps
//! ingesting epochs mid-stream. Per-request latency is taken from the
//! server's own admission-to-response histogram — the p50/p95/p99 SLO
//! counters [`ServerStats`] exposes — and recorded in
//! `BENCH_serve.json` with the same latency schema `repro --json` emits.
//!
//! ```text
//! cargo bench --bench serve_latency [-- --smoke] [--clients N]
//!                                   [--json PATH] [--gate BASELINE]
//! ```
//!
//! - `--smoke`: reduced scale for CI.
//! - `--json PATH`: write the result artifact to PATH.
//! - `--gate BASELINE`: compare against a checked-in baseline JSON and
//!   exit non-zero if p99 latency regressed more than 2x (baseline
//!   host-normalised via the p50 ratio). Any rejected or shed request
//!   under the default `Block` policy always exits non-zero, as does a
//!   served count short of the offered load.

use flexi_bench::json::{extract_number, latency_obj, Json};
use flexiwalker::prelude::*;
use std::time::Instant;

struct Scale {
    mode: &'static str,
    graph_scale: u32,
    edges: usize,
    clients: usize,
    requests_per_client: usize,
    queries_per_request: usize,
    steps: usize,
    /// Client 0 applies one update batch every this many of its requests.
    update_every: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    graph_scale: 12,
    edges: 32_768,
    clients: 8,
    requests_per_client: 100,
    queries_per_request: 64,
    steps: 20,
    update_every: 25,
};

// Enough requests that the handful of cold-cache samples (first request
// per walker, post-update migrations) sit above the p99 rank, so the
// gate measures steady-state serving latency.
const SMOKE: Scale = Scale {
    mode: "smoke",
    graph_scale: 11,
    edges: 16_384,
    clients: 4,
    requests_per_client: 60,
    queries_per_request: 32,
    steps: 10,
    update_every: 20,
};

/// Drives the server with closed-loop mixed traffic and returns the final
/// stats plus wall-clock seconds.
fn measure(scale: &Scale, workers: usize) -> (ServerStats, f64) {
    let csr = gen::rmat(scale.graph_scale, scale.edges, gen::RmatParams::SOCIAL, 77);
    let csr = WeightModel::UniformReal.apply(csr, 77);
    let num_nodes = csr.num_nodes();
    let graph = GraphHandle::new(csr);
    let server = WalkServer::builder()
        .device(DeviceSpec::a6000())
        .workers(workers)
        .serve();
    let walkers = ["node2vec", "sopr"];
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..scale.clients {
            let server = &server;
            let graph = &graph;
            scope.spawn(move || {
                for r in 0..scale.requests_per_client {
                    if client == 0 && r > 0 && r % scale.update_every == 0 {
                        let outcome = server
                            .apply_updates(
                                graph,
                                vec![GraphUpdate::AddEdge {
                                    src: ((r * 131) % num_nodes) as NodeId,
                                    dst: ((r * 137) % num_nodes) as NodeId,
                                    weight: 1.5,
                                    label: 0,
                                }],
                            )
                            .expect("update admitted")
                            .wait();
                        assert!(outcome.is_ok(), "update applies: {outcome:?}");
                    }
                    let base = (client * scale.requests_per_client + r) * scale.queries_per_request
                        % num_nodes;
                    let queries: Vec<NodeId> = (0..scale.queries_per_request)
                        .map(|i| ((base + i) % num_nodes) as NodeId)
                        .collect();
                    let report = server
                        .submit(WalkRequest::new(graph, walkers[r % 2], queries).steps(scale.steps))
                        .expect("walk admitted")
                        .wait();
                    assert!(report.is_ok(), "walk serves: {report:?}");
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (server.shutdown(), wall)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = &FULL;
    let mut json_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let mut clients_flag: Option<usize> = None;
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = &SMOKE,
            "--json" => {
                i += 1;
                json_path = Some(value_of(&args, i, "--json"));
            }
            "--gate" => {
                i += 1;
                gate_path = Some(value_of(&args, i, "--gate"));
            }
            "--clients" => {
                i += 1;
                match value_of(&args, i, "--clients").parse() {
                    Ok(n) => clients_flag = Some(n),
                    Err(_) => {
                        eprintln!("--clients requires a numeric argument");
                        std::process::exit(2);
                    }
                }
            }
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
        i += 1;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = host.max(2);
    let mut scale = Scale { ..*scale };
    if let Some(clients) = clients_flag {
        scale.clients = clients.max(1);
    }
    let offered = scale.clients * scale.requests_per_client;
    println!(
        "# serve_latency [{}]: {} clients x {} requests x {} queries, {} steps, \
         host parallelism {host}",
        scale.mode,
        scale.clients,
        scale.requests_per_client,
        scale.queries_per_request,
        scale.steps
    );

    let (stats, wall) = measure(&scale, workers);
    let total_queries = (offered * scale.queries_per_request) as f64;
    let qps = total_queries / wall;
    println!("{stats}");
    println!("  wall:               {wall:>12.2} s  ({qps:.0} queries/s)");

    let p50_ms = stats.serve_latency.p50() * 1e3;
    let p99_ms = stats.serve_latency.p99() * 1e3;
    let doc = Json::obj([
        ("bench", Json::from("serve_latency")),
        ("mode", Json::from(scale.mode)),
        ("host_parallelism", Json::from(host)),
        ("workers", Json::from(workers)),
        ("clients", Json::from(scale.clients)),
        ("requests_per_client", Json::from(scale.requests_per_client)),
        ("queries_per_request", Json::from(scale.queries_per_request)),
        ("steps", Json::from(scale.steps)),
        ("served", Json::from(stats.served)),
        ("updates_applied", Json::from(stats.updates_applied)),
        ("serve_cycles", Json::from(stats.serve_cycles)),
        ("admitted", Json::from(stats.admission.admitted)),
        ("rejected", Json::from(stats.admission.rejected)),
        ("shed", Json::from(stats.admission.shed)),
        ("peak_depth", Json::from(stats.admission.peak_depth)),
        ("throughput_qps", Json::from(qps)),
        ("latency", latency_obj(&stats.serve_latency)),
        (
            "update_p99_ms",
            Json::from(stats.update_latency.p99() * 1e3),
        ),
    ]);
    if let Some(path) = &json_path {
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("  (result recorded in {path})");
    }

    let mut failed = false;
    if stats.admission.rejected != 0 || stats.admission.shed != 0 {
        eprintln!(
            "GATE FAIL: default Block policy must lose nothing \
             ({} rejected, {} shed)",
            stats.admission.rejected, stats.admission.shed
        );
        failed = true;
    }
    if stats.served != offered as u64 {
        eprintln!(
            "GATE FAIL: served {} of {offered} offered requests",
            stats.served
        );
        failed = true;
    }
    if let Some(path) = &gate_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        });
        match (
            extract_number(&baseline, "p50_ms"),
            extract_number(&baseline, "p99_ms"),
        ) {
            (Some(base_p50), Some(base_p99)) => {
                // Normalise the baseline to this host's speed via the p50
                // ratio: a runner slower than the baseline machine scales
                // the p99 expectation up proportionally, so the 2x gate
                // measures the serving loop, not the hardware. A faster
                // runner keeps the raw baseline (strictly easier to pass).
                let host_factor = (p50_ms / base_p50.max(1e-9)).max(1.0);
                let expected = base_p99 * host_factor;
                if p99_ms > expected * 2.0 {
                    eprintln!(
                        "GATE FAIL: p99 serve latency regressed more than 2x \
                         ({p99_ms:.2} ms vs host-normalised baseline {expected:.2} ms)"
                    );
                    failed = true;
                } else {
                    println!(
                        "  gate: p99 within 2x of host-normalised baseline \
                         ({expected:.2} ms) — ok"
                    );
                }
            }
            _ => {
                eprintln!("GATE FAIL: baseline {path} lacks p50_ms/p99_ms");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
